type t = {
  mutable samples : (float * float) list; (* reversed *)
  mutable count : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable max_d : float;
  mutable min_d : float;
}

let create () =
  { samples = []; count = 0; sum = 0.0; sum_sq = 0.0; max_d = 0.0; min_d = infinity }

let record t ~time ~delay =
  t.samples <- (time, delay) :: t.samples;
  t.count <- t.count + 1;
  t.sum <- t.sum +. delay;
  t.sum_sq <- t.sum_sq +. (delay *. delay);
  if delay > t.max_d then t.max_d <- delay;
  if delay < t.min_d then t.min_d <- delay

let count t = t.count
let max_delay t = t.max_d
let min_delay t = if t.count = 0 then 0.0 else t.min_d
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let stddev t =
  if t.count < 2 then 0.0
  else
    let n = float_of_int t.count in
    let var = (t.sum_sq /. n) -. ((t.sum /. n) ** 2.0) in
    sqrt (Float.max 0.0 var)

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Delay_stats.percentile: p outside [0,100]";
  if t.count = 0 then invalid_arg "Delay_stats.percentile: no samples";
  let sorted =
    List.sort compare (List.rev_map snd t.samples) |> Array.of_list
  in
  let rank =
    int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) - 1
  in
  sorted.(max 0 (min (t.count - 1) rank))

let samples t = List.rev t.samples

let report ?(name = "delays") t =
  Report.of_points ~name ~x:"time" ~y:"delay" (samples t)

let summary_report ?(name = "delay-summary") t =
  Report.make ~name ~columns:[ "stat"; "value" ] ~rows:(fun () ->
      let cell = Printf.sprintf "%.9g" in
      [
        [ "count"; string_of_int (count t) ];
        [ "mean"; cell (mean t) ];
        [ "stddev"; cell (stddev t) ];
        [ "min"; cell (min_delay t) ];
        [ "max"; cell (max_delay t) ];
      ])

let series_max_over_windows t ~window =
  if window <= 0.0 then invalid_arg "Delay_stats: window must be positive";
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (time, delay) ->
      let bin = int_of_float (time /. window) in
      let cur = Option.value (Hashtbl.find_opt tbl bin) ~default:neg_infinity in
      if delay > cur then Hashtbl.replace tbl bin delay)
    t.samples;
  Hashtbl.fold (fun bin d acc -> ((float_of_int bin *. window), d) :: acc) tbl []
  |> List.sort compare
