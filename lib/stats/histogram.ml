type t = { bin_width : float; counts : (int, int) Hashtbl.t; mutable total : int }

let create ~bin_width =
  if bin_width <= 0.0 then invalid_arg "Histogram: bin width must be positive";
  { bin_width; counts = Hashtbl.create 64; total = 0 }

let add t x =
  let bin = int_of_float (Float.floor (x /. t.bin_width)) in
  let cur = Option.value (Hashtbl.find_opt t.counts bin) ~default:0 in
  Hashtbl.replace t.counts bin (cur + 1);
  t.total <- t.total + 1

let count t = t.total

let bins t =
  Hashtbl.fold (fun bin c acc -> ((float_of_int bin *. t.bin_width), c) :: acc) t.counts []
  |> List.sort compare

let mode_bin t =
  List.fold_left
    (fun best (edge, c) ->
      match best with
      | Some (_, bc) when bc >= c -> best
      | _ -> Some (edge, c))
    None (bins t)

let report ?(name = "histogram") t =
  Report.of_points ~name ~x:"bin_edge" ~y:"count"
    (List.map (fun (edge, c) -> (edge, float_of_int c)) (bins t))

let cumulative t =
  let n = float_of_int (max 1 t.total) in
  let _, acc =
    List.fold_left
      (fun (run, acc) (edge, c) ->
        let run = run + c in
        (run, ((edge +. t.bin_width), float_of_int run /. n) :: acc))
      (0, []) (bins t)
  in
  List.rev acc
