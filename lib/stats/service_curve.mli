(** Cumulative arrival/service step curves and the {e service lag} between
    them — the instrument behind Fig. 5, where the paper contrasts how
    closely H-WF²Q+ service tracks arrivals versus H-WFQ.

    [A(t)] counts arrived units (packets or bits), [W(t)] served units; the
    lag at a departure is [A(t) − W(t)], the backlog the discipline let
    accumulate. *)

type t

val create : unit -> t
val on_arrival : t -> time:float -> units:float -> unit
val on_service : t -> time:float -> units:float -> unit

val arrivals : t -> (float * float) list
(** Step curve [(time, cumulative arrived)], in time order. *)

val services : t -> (float * float) list
val arrived_total : t -> float
val served_total : t -> float
val lag : t -> float
(** Current [A − W]. *)

val max_lag : t -> float
(** Largest [A − W] observed at any recorded instant. *)

val lag_series : t -> (float * float) list
(** [(time, A(t) − W(t))] at every recorded event. *)

val report : ?name:string -> t -> Report.t
(** The three curves as one long-format [series,x,y] table. *)
