(** Tiny CSV writer for experiment series (consumed by external plotting). *)

val write : path:string -> header:string list -> rows:float list list -> unit
(** Overwrites [path]. Row lengths must match the header. *)

val write_strings : path:string -> header:string list -> rows:string list list -> unit
(** Same, with preformatted cells (mixed numeric/text tables). *)

val write_named_series : path:string -> series:(string * (float * float) list) list -> unit
(** Long format: [series,x,y] rows, one block per named series. *)
