(** Fixed-bin-width histogram for delay distributions. *)

type t

val create : bin_width:float -> t
val add : t -> float -> unit
val count : t -> int
val bins : t -> (float * int) list
(** [(bin_lower_edge, count)] for non-empty bins, ascending. *)

val mode_bin : t -> (float * int) option
val cumulative : t -> (float * float) list
(** [(bin_upper_edge, fraction ≤ edge)] — an empirical CDF. *)

val report : ?name:string -> t -> Report.t
(** Non-empty bins as a [bin_edge,count] table. *)
