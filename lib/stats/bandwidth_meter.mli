(** Bandwidth measurement by exponential averaging over fixed windows —
    the paper's Fig. 9 methodology ("measured by exponentially averaging
    over 50ms windows").

    Departed bits are binned into [window]-second intervals; the reported
    series is an EWMA across consecutive bins:
    [est_k = α·(bits_k/window) + (1−α)·est_{k−1}]. *)

type t

val create : ?window:float -> ?alpha:float -> unit -> t
(** Defaults: [window = 0.05] s, [alpha = 0.3]. *)

val add : t -> time:float -> bits:float -> unit
(** Account a departure. Times must be non-decreasing. *)

val series : t -> until:float -> (float * float) list
(** [(window_end_time, smoothed bits/s)] for every window up to [until],
    including empty ones (which decay the estimate). *)

val average_rate : t -> from_:float -> until:float -> float
(** Unsmoothed mean rate over the interval (total bits / span). *)

val report : ?name:string -> t -> until:float -> Report.t
(** The smoothed series as a [time,rate] table. *)
