type t = { name : string; columns : string list; rows : unit -> string list list }

let make ~name ~columns ~rows =
  if columns = [] then invalid_arg "Report.make: empty column list";
  { name; columns; rows }

let name t = t.name
let columns t = t.columns

let rows t =
  let width = List.length t.columns in
  let rows = t.rows () in
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg (Printf.sprintf "Report %s: ragged row" t.name))
    rows;
  rows

let cell x = Printf.sprintf "%.9g" x

let of_points ~name ~x ~y points =
  make ~name ~columns:[ x; y ] ~rows:(fun () ->
      List.map (fun (px, py) -> [ cell px; cell py ]) points)

let of_named_series ~name series =
  make ~name ~columns:[ "series"; "x"; "y" ] ~rows:(fun () ->
      List.concat_map
        (fun (s, points) -> List.map (fun (x, y) -> [ s; cell x; cell y ]) points)
        series)

let to_csv t ~path = Csv.write_strings ~path ~header:t.columns ~rows:(rows t)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," t.columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf
