type t = {
  window : float;
  alpha : float;
  bins : (int, float) Hashtbl.t; (* bin index -> bits *)
  mutable events : (float * float) list; (* (time, bits), reversed *)
  mutable last_time : float;
}

let create ?(window = 0.05) ?(alpha = 0.3) () =
  if window <= 0.0 then invalid_arg "Bandwidth_meter: window must be positive";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Bandwidth_meter: alpha in (0,1]";
  { window; alpha; bins = Hashtbl.create 256; events = []; last_time = 0.0 }

let add t ~time ~bits =
  if time < t.last_time -. 1e-12 then
    invalid_arg "Bandwidth_meter.add: time went backwards";
  t.last_time <- Float.max t.last_time time;
  let bin = int_of_float (time /. t.window) in
  let cur = Option.value (Hashtbl.find_opt t.bins bin) ~default:0.0 in
  Hashtbl.replace t.bins bin (cur +. bits);
  t.events <- (time, bits) :: t.events

let series t ~until =
  let nbins = int_of_float (ceil (until /. t.window)) in
  let rec walk bin est acc =
    if bin >= nbins then List.rev acc
    else
      let bits = Option.value (Hashtbl.find_opt t.bins bin) ~default:0.0 in
      let inst = bits /. t.window in
      let est = (t.alpha *. inst) +. ((1.0 -. t.alpha) *. est) in
      let time = float_of_int (bin + 1) *. t.window in
      walk (bin + 1) est ((time, est) :: acc)
  in
  walk 0 0.0 []

let report ?(name = "bandwidth") t ~until =
  Report.of_points ~name ~x:"time" ~y:"rate" (series t ~until)

let average_rate t ~from_ ~until =
  if until <= from_ then invalid_arg "Bandwidth_meter.average_rate: empty interval";
  let total =
    List.fold_left
      (fun acc (time, bits) ->
        if time >= from_ && time < until then acc +. bits else acc)
      0.0 t.events
  in
  total /. (until -. from_)
