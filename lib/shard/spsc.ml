(* Classic power-of-two ring with monotonically increasing head/tail
   counters (indices are [land mask]). The producer owns [tail], the
   consumer owns [head]; each reads the other's counter only to test
   fullness/emptiness. Cell contents are plain array slots, published by
   the owner's subsequent Atomic.set on its counter and acquired by the
   peer's Atomic.get — the SC atomics are the happens-before edges that
   make the non-atomic cell reads safe.

   Blocking is hybrid: a short cpu_relax spin (the steady-state case — the
   peer is live on another core and the wait is nanoseconds), then a
   mutex/condvar sleep. The sleeper flag protocol avoids paying the mutex
   on every operation: a waiter sets its flag under the lock and re-checks
   the queue *after* setting it; the peer checks the flag *after* its
   counter store. Under sequential consistency one of the two must see the
   other — either the waiter's re-check finds the new element/slot, or the
   peer finds the flag and signals (and since the waiter holds the mutex
   until it sleeps, the signal cannot land in the gap). *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t; (* consumer position: next index to pop *)
  tail : int Atomic.t; (* producer position: next index to fill *)
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  consumer_waiting : bool Atomic.t;
  producer_waiting : bool Atomic.t;
}

let ceil_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = ceil_pow2 capacity in
  {
    buf = Array.make cap None;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    consumer_waiting = Atomic.make false;
    producer_waiting = Atomic.make false;
  }

let capacity t = Array.length t.buf
let length t = Atomic.get t.tail - Atomic.get t.head

(* Raw slot transfer with no signaling: safe to call while holding [m]
   (the signal helpers below take [m], so they must stay out of here). *)
let raw_push t v =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head >= Array.length t.buf then false
  else begin
    t.buf.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let raw_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let signal_consumer t =
  if Atomic.get t.consumer_waiting then begin
    Mutex.lock t.m;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.m
  end

let signal_producer t =
  if Atomic.get t.producer_waiting then begin
    Mutex.lock t.m;
    Condition.broadcast t.not_full;
    Mutex.unlock t.m
  end

let try_push t v =
  if raw_push t v then begin
    signal_consumer t;
    true
  end
  else false

let try_pop t =
  match raw_pop t with
  | Some _ as v ->
    signal_producer t;
    v
  | None -> None

let spin_budget = 256

let push t v =
  if not (raw_push t v) then begin
    let spins = ref spin_budget in
    let pushed = ref false in
    while (not !pushed) && !spins > 0 do
      Domain.cpu_relax ();
      decr spins;
      pushed := raw_push t v
    done;
    if not !pushed then begin
      Mutex.lock t.m;
      Atomic.set t.producer_waiting true;
      while not (raw_push t v) do
        Condition.wait t.not_full t.m
      done;
      Atomic.set t.producer_waiting false;
      Mutex.unlock t.m
    end
  end;
  signal_consumer t

let pop t =
  let v =
    match raw_pop t with
    | Some v -> v
    | None ->
      let spins = ref spin_budget in
      let got = ref None in
      while !got = None && !spins > 0 do
        Domain.cpu_relax ();
        decr spins;
        got := raw_pop t
      done;
      (match !got with
      | Some v -> v
      | None ->
        Mutex.lock t.m;
        Atomic.set t.consumer_waiting true;
        let v = ref None in
        while
          (v := raw_pop t;
           !v = None)
        do
          Condition.wait t.not_empty t.m
        done;
        Atomic.set t.consumer_waiting false;
        Mutex.unlock t.m;
        Option.get !v)
  in
  signal_producer t;
  v
