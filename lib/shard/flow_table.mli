(** Stable flow routing for the multi-port device.

    Three pure functions of their arguments and nothing else — no state,
    no RNG draws, no dependence on batch size, worker count, or call
    order. That purity {e is} the flow-stability invariant the ingress
    router relies on (and the property tests pin down): the same flow id
    always lands on the same output link and the same class leaf, and a
    link always belongs to the same shard for a given [(links, shards)]
    geometry, so re-sharding the device (changing worker count) can only
    re-partition whole links, never split one link's arrival stream.

    Hashing is {!Engine.Rng.mix64} (SplitMix64 finalizer) rather than
    [Hashtbl.hash]: full 64-bit avalanche, identical across OCaml
    versions and processes. *)

val link_of_flow : links:int -> int -> int
(** [link_of_flow ~links flow] — the output link in [0 .. links-1] flow
    [flow] is wired to.
    @raise Invalid_argument if [links < 1] or [flow < 0]. *)

val leaf_of_flow : leaves:int -> int -> int
(** [leaf_of_flow ~leaves flow] — the class-tree leaf slot in
    [0 .. leaves-1] the flow's packets enter on its link. Uses an
    independent hash dimension from {!link_of_flow}, so sibling flows on
    one link spread over the link's classes.
    @raise Invalid_argument if [leaves < 1] or [flow < 0]. *)

val shard_of_link : links:int -> shards:int -> int -> int
(** [shard_of_link ~links ~shards link] — the shard in [0 .. shards-1]
    that owns [link]. A block partition (links are contiguous per shard):
    deterministic in [(links, shards, link)] alone, monotone in [link],
    and every shard owns at least one link when [shards <= links].
    @raise Invalid_argument if the geometry is invalid or [link] is out
    of range. *)

val shard_of_flow : links:int -> shards:int -> int -> int
(** [shard_of_flow ~links ~shards flow] is
    [shard_of_link ~links ~shards (link_of_flow ~links flow)] — the
    composition the router actually uses. *)

(** Open-on-first-arrival flow→session mapping for a dynamic session set.

    The routing functions above map a flow id onto a {e static} class
    leaf. [Sessions] covers the lifecycle path: flows map onto policy
    sessions that may not exist yet, and the first packet of an unknown
    flow opens its session at ingress. Closing forgets the mapping, so a
    later packet of the same flow id opens a {e fresh} session (new
    handle generation, fresh virtual-time stamps) — exactly the churn
    pattern [bench churn] drives at 10⁵–10⁶ concurrent flows. *)
module Sessions : sig
  type t

  val create :
    ?rate_of_flow:(int -> float) ->
    policy:Sched.Sched_intf.t ->
    default_rate:float ->
    unit ->
    t
  (** [rate_of_flow] gives each new session's guaranteed rate (default:
      [default_rate] for every flow).
      @raise Invalid_argument if [default_rate <= 0]. *)

  val handle : t -> flow:int -> Sched.Session_handle.t
  (** The flow's session handle, opening the session on first sight. *)

  val session : t -> flow:int -> int
  (** The flow's session slot ({!handle} resolved), for the driving
      protocol. *)

  val close : t -> policy:Sched.Sched_intf.close_policy -> now:float -> flow:int -> unit
  (** Close the flow's session (no-op for unknown flows) and forget the
      mapping; the flow id re-opens on its next arrival. *)

  val known : t -> flow:int -> bool
  val live : t -> int
end
