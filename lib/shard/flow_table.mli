(** Stable flow routing for the multi-port device.

    Three pure functions of their arguments and nothing else — no state,
    no RNG draws, no dependence on batch size, worker count, or call
    order. That purity {e is} the flow-stability invariant the ingress
    router relies on (and the property tests pin down): the same flow id
    always lands on the same output link and the same class leaf, and a
    link always belongs to the same shard for a given [(links, shards)]
    geometry, so re-sharding the device (changing worker count) can only
    re-partition whole links, never split one link's arrival stream.

    Hashing is {!Engine.Rng.mix64} (SplitMix64 finalizer) rather than
    [Hashtbl.hash]: full 64-bit avalanche, identical across OCaml
    versions and processes. *)

val link_of_flow : links:int -> int -> int
(** [link_of_flow ~links flow] — the output link in [0 .. links-1] flow
    [flow] is wired to.
    @raise Invalid_argument if [links < 1] or [flow < 0]. *)

val leaf_of_flow : leaves:int -> int -> int
(** [leaf_of_flow ~leaves flow] — the class-tree leaf slot in
    [0 .. leaves-1] the flow's packets enter on its link. Uses an
    independent hash dimension from {!link_of_flow}, so sibling flows on
    one link spread over the link's classes.
    @raise Invalid_argument if [leaves < 1] or [flow < 0]. *)

val shard_of_link : links:int -> shards:int -> int -> int
(** [shard_of_link ~links ~shards link] — the shard in [0 .. shards-1]
    that owns [link]. A block partition (links are contiguous per shard):
    deterministic in [(links, shards, link)] alone, monotone in [link],
    and every shard owns at least one link when [shards <= links].
    @raise Invalid_argument if the geometry is invalid or [link] is out
    of range. *)

val shard_of_flow : links:int -> shards:int -> int -> int
(** [shard_of_flow ~links ~shards flow] is
    [shard_of_link ~links ~shards (link_of_flow ~links flow)] — the
    composition the router actually uses. *)
