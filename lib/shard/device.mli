(** Multi-port scheduling device: N independent output links, each its own
    H-WF²Q+ instance on a private simulator, sharded over worker domains
    behind a batched ingress router.

    The paper defines H-WF²Q+ per output link; a device schedules hundreds
    of them at once. Here every link is one {!Hpfq.Hier_engine} (flat by
    default) with its own {!Engine.Simulator}, links are partitioned over
    shards by the stable {!Flow_table}, each shard is drained by one
    worker domain from a {!Parallel.Pool.Persistent} pool, and the caller
    acts as the ingress: it walks the flow table round by round, batches
    arrivals per shard, and feeds bounded {!Spsc} mailboxes while the
    workers run their links' event loops concurrently — a barrier-free
    steady-state loop with backpressure, not a fork-join per round.

    {2 Determinism contract}

    A link's simulation consumes {e only} per-flow {!Engine.Rng.for_task}
    streams and its own private simulator, and the router's flow table is
    pure, so each link's departure trace (packet ids, sequence numbers,
    departure stamps, drops) is a function of [(seed, workload, links,
    spec)] alone — bit-identical for any worker or shard count, and
    bit-identical to {!run_link_reference}, the plain sequential replay
    of that one link with no pool, no mailboxes and no domains. The
    lockstep tests hold {!run} to exactly that. *)

type workload = {
  flows_per_link : int;  (** flow population = [flows_per_link * links] *)
  rounds : int;  (** ingress rounds; one router pass per round *)
  burst_max : int;
      (** per flow per round, a uniform draw in [0 .. burst_max] packets *)
  packet_bits : float;
  overload : float;
      (** offered / capacity ratio per link; > 1 exercises queue caps and
          drops, < 1 leaves links idle between rounds *)
  seed : int64;
}

val default_workload : rounds:int -> workload
(** 4 flows per link, bursts up to 8 packets, 1 KB packets, 1.2x
    overload, seed 1. *)

type t
(** An immutable device configuration; {!run} builds all mutable state
    afresh, so one [t] can be run many times (and concurrently with
    itself only if you enjoy wall-clock noise — state is never shared). *)

val create :
  ?workers:int ->
  ?shards:int ->
  ?mailbox_capacity:int ->
  ?engine:Hpfq.Hier_engine.choice ->
  ?spec:Hpfq.Class_tree.t ->
  ?queue_cap_pkts:int ->
  ?workload:workload ->
  ?record_traces:bool ->
  ?observe:bool ->
  links:int ->
  unit ->
  t
(** [workers] (default 1) worker domains drain [shards] (default
    [workers]) mailboxes. [spec] is the per-link class tree (default: a
    4-leaf two-level tree at 1 Gbps with every leaf queue capped at
    [queue_cap_pkts] packets — a user-supplied [spec] is taken as-is).
    [mailbox_capacity] (default 256) bounds each shard mailbox; when
    [shards > workers] one domain drains several mailboxes sequentially,
    so the effective capacity is raised to hold a whole run — bounded
    backpressure requires a dedicated consumer per mailbox.
    [record_traces] keeps full per-link departure traces (tests);
    [observe] attaches a per-link {!Obs.Trace} and keeps its metrics.
    @raise Invalid_argument on nonsensical geometry or workload. *)

val links : t -> int
val shards : t -> int
val workers : t -> int
val spec : t -> Hpfq.Class_tree.t
val workload : t -> workload

type link_result = {
  link : int;
  shard : int;  (** owner shard under this geometry *)
  departed_pkts : int;
  departed_bits : float;
  drops : int;
  events : int;  (** simulator events processed *)
  final_time : float;  (** simulator clock after draining *)
  trace_hash : int64;
      (** order-sensitive fingerprint of (flow, seq, stamp) departures —
          always computed, so cheap cross-worker-count comparison needs
          no [record_traces] *)
  trace : (int * int * float) array option;
      (** [(leaf node id, per-flow seq, departure stamp)] when
          [record_traces] *)
  sim : Engine.Simulator.t;  (** the link's (drained) simulator *)
  stats : Engine.Simulator.stats;
  metrics : Stats.Report.t option;  (** per-node counters when [observe] *)
}

type result = {
  per_link : link_result array;  (** indexed by link id *)
  wall_s : float;
  total_pkts : int;
  total_bits : float;
  total_drops : int;
  total_events : int;
  device_hash : int64;  (** fold of the per-link trace hashes, link order *)
}

val run : t -> result
(** Spawn the worker pool, route the whole workload, drain every link,
    join, aggregate. Worker exceptions re-raise here (after the mailboxes
    are drained so the router cannot wedge). *)

val run_link_reference : t -> link:int -> link_result
(** The determinism oracle: replay link [link] of the same configured
    workload sequentially in the calling domain — no pool, no mailboxes.
    Equal to [run t].per_link.(link) field for field (modulo [sim] and
    [metrics] identity) for every worker/shard count. *)

val report : result -> Stats.Report.t
(** Per-link rows (link, shard, pkts, bits, drops, events, final time,
    trace hash) plus a device-total row. *)

val sim_report : result -> Stats.Report.t
(** The merged event-set/occupancy table: {!Obs.Trace.sim_report} over
    every link's simulator (per-link rows + aggregate totals). *)

val metrics_report : result -> Stats.Report.t option
(** When the device ran with [observe]: every link's per-node {!Obs.Metrics}
    rows prefixed with the link id, plus a device-total row. [None]
    otherwise. *)

val hash_hex : int64 -> string
(** Render a trace/device hash the way the reports and JSON do. *)
