(* Salts keep the link and leaf dimensions independent: a flow's link and
   leaf are separate mix64 draws off disjoint lattice offsets, so flows
   that collide on a link still spread over its leaves. *)

let link_salt = 0x51_7CC1_B727_220AL (* 2^64 / pi, truncated *)
let leaf_salt = 0x2545_F491_4F6C_DD1DL

(* OCaml ints are 63-bit: truncate and mask rather than shift, so the
   result is always in [0, max_int] *)
let positive h = Int64.to_int h land max_int

let hash ~salt i =
  positive
    (Engine.Rng.mix64
       (Int64.add salt (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int i))))

let link_of_flow ~links flow =
  if links < 1 then invalid_arg "Flow_table.link_of_flow: links must be >= 1";
  if flow < 0 then invalid_arg "Flow_table.link_of_flow: flow must be >= 0";
  hash ~salt:link_salt flow mod links

let leaf_of_flow ~leaves flow =
  if leaves < 1 then invalid_arg "Flow_table.leaf_of_flow: leaves must be >= 1";
  if flow < 0 then invalid_arg "Flow_table.leaf_of_flow: flow must be >= 0";
  hash ~salt:leaf_salt flow mod leaves

(* Block partition [link * shards / links]: contiguous link ranges per
   shard, every shard non-empty when shards <= links, and — unlike
   [link mod shards] — owning shard sets only coarsen/refine as the shard
   count changes, which keeps per-shard working sets contiguous. *)
let shard_of_link ~links ~shards link =
  if links < 1 then invalid_arg "Flow_table.shard_of_link: links must be >= 1";
  if shards < 1 then invalid_arg "Flow_table.shard_of_link: shards must be >= 1";
  if link < 0 || link >= links then
    invalid_arg
      (Printf.sprintf "Flow_table.shard_of_link: link %d out of 0..%d" link (links - 1));
  link * shards / links

let shard_of_flow ~links ~shards flow =
  shard_of_link ~links ~shards (link_of_flow ~links flow)

(* Open-on-first-arrival session table: external flow ids map onto policy
   sessions that may not exist yet; the first packet of a flow opens its
   session at ingress, and a close simply forgets the mapping (a later
   packet of the same flow id re-opens a fresh session — new handle
   generation, fresh stamps). *)
module Sessions = struct
  type t = {
    policy : Sched.Sched_intf.t;
    rate_of_flow : int -> float;
    table : (int, Sched.Session_handle.t) Hashtbl.t;
  }

  let create ?rate_of_flow ~policy ~default_rate () =
    if default_rate <= 0.0 then
      invalid_arg "Flow_table.Sessions.create: default_rate must be positive";
    let rate_of_flow =
      match rate_of_flow with Some f -> f | None -> fun _ -> default_rate
    in
    { policy; rate_of_flow; table = Hashtbl.create 1024 }

  let handle t ~flow =
    match Hashtbl.find_opt t.table flow with
    | Some h -> h
    | None ->
      let h = t.policy.Sched.Sched_intf.open_session ~rate:(t.rate_of_flow flow) in
      Hashtbl.add t.table flow h;
      h

  let session t ~flow = t.policy.Sched.Sched_intf.session_of_handle (handle t ~flow)

  let close t ~policy ~now ~flow =
    match Hashtbl.find_opt t.table flow with
    | None -> ()
    | Some h ->
      Hashtbl.remove t.table flow;
      t.policy.Sched.Sched_intf.close_session ~now ~policy h

  let known t ~flow = Hashtbl.mem t.table flow
  let live t = Hashtbl.length t.table
end
