module Ih = Prioq.Indexed_heap4
module Pool = Parallel.Pool

let log_src =
  Logs.Src.create "hpfq.subtree" ~doc:"Subtree-sharded H-WF2Q+ server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Subtree-sharded H-WF2Q+: one giant hierarchy, its root-child subtrees
   partitioned across shards, with the root's WF2Q+ run in epochs.

   The enabling observation (see DESIGN.md): in [Hier_flat], every interior
   node's virtual-time machinery runs on the node's post-dated reference
   clock [tn] — never on wall-clock simulation time. Only the root (under
   the default [`Real_time] clock) reads the simulator. So the state of a
   root-child subtree evolves as a pure function of the sequence of
   operations applied to it, and the preorder node numbering makes every
   such subtree a contiguous id range: shards are disjoint index regions of
   the same flat arenas, safe to mutate from different Domains (distinct
   array cells and bytes are distinct memory locations in the OCaml memory
   model), with [Pool.Persistent.await] as the happens-before edge.

   Two regimes, selected by [epoch]:

   - [epoch = 1] — the synchronous engine. Every operation runs inline on
     the calling (coordinator) domain in exactly [Hier_flat]'s order; the
     scheduler-visible code below mirrors hier_flat.ml line for line, so
     departures, eq. 27-29 stamps, drops and clocks are bit-identical to
     the sequential engine at any shard/worker count (enforced by the
     qcheck lockstep differential in test/test_subtree.ml).

   - [epoch = k > 1] — the epoch-batched engine. Arrivals that land while
     the link is transmitting are staged into per-shard SPSC mailboxes
     instead of being integrated immediately. Every epoch — at latest every
     k-1 departures, and always when the link would go idle — the
     coordinator runs a sync: shard workers drain their mailboxes in
     parallel, pushing each packet through the shard-private part of ARRIVE
     (fifo, eq. 28 backlog at the leaf's parent, the RESTART-NODE cascade
     up to the subtree root), and record at most one boundary effect per
     root-child (its freshly committed head — the shard's eligible-head
     proposal). The coordinator then applies the proposals to the root's
     WF2Q+ in canonical slot order and lets the root restart. An arrival is
     therefore integrated at most k-1 departures after the sequential
     schedule would have seen it, which is what gives the
     (k-1) * l_max / r per-session service-lag bound proved in
     {!Hpfq.Theory.epoch_lag_bound} and measured in test_subtree.ml.

   Worker-domain code (flush_shard / flush_arrival / restart_in_shard)
   touches only shard-owned node and session-arena indices plus per-shard
   scratch; root state, the link, the simulator, callbacks and counters are
   coordinator-only. Observers are supported at [epoch = 1] only — at
   [epoch > 1] the backlog events would fire on worker domains. *)

type t = {
  sim : Engine.Simulator.t;
  (* Packet arena. Single-domain alloc/free contract: only the coordinator
     allocates (inject/stage) and frees (departure/drop); shard workers
     only READ pool fields of live handles during a sync round.
     [Pool.Persistent.await] is the happens-before edge back. *)
  pkt_pool : Net.Packet_pool.t;
  n_nodes : int;
  root : int;
  root_real : bool;
  (* -- static topology (see Hier_flat) -- *)
  parent : int array;
  rate : float array;
  level : int array;
  session_in_parent : int array;
  children_off : int array;
  children_len : int array;
  child_ids : int array;
  names : string array;
  by_name : (string, int) Hashtbl.t;
  leaf_list : (string * int) list;
  path_off : int array;
  path_len : int array;
  path_nodes : int array;
  (* -- per-node dynamic state -- *)
  tn : float array;
  departed_bits : float array;
  busy : Bytes.t;
  active_child : int array;
  logical : int array;
  logical_bits : float array;
  fifos : Net.Fifo.t array;
  next_seq : int array;
  lifecycle : Bytes.t;
  v : float array;
  v_time : float array;
  backlogged_count : int array;
  eligible : Ih.t array;
  waiting : Ih.t array;
  observers : Sched.Sched_intf.observer option array;
  sbase : int array;
  s_rate : float array;
  s_start : float array;
  s_finish : float array;
  s_head : float array;
  s_backlogged : Bytes.t;
  now_cache : float array;
  (* -- link state (hooks handle-based; boxed views only in the compat
     wrappers) -- *)
  mutable on_depart : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable on_drop : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable on_transmit_start : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable link_busy : bool;
  mutable drops : int;
  mutable in_flight_leaf : int;
  mutable complete_cb : unit -> unit;
  mutable burst_max : int;
  mutable in_batch : bool;
  mutable batch_has : bool;
  mutable batch_due : float;
  (* -- the shard/epoch layer -- *)
  shards : int; (* effective: <= number of root children *)
  epoch : int;
  pool : Pool.Persistent.t option; (* Some iff epoch > 1 and workers > 0 *)
  node_shard : int array; (* node id -> owning shard; -1 at the root *)
  mailboxes : int Spsc.t array; (* staged arrival handles, per shard *)
  mutable staged_total : int;
  mutable since_sync : int; (* departures since the last sync *)
  mutable syncs : int;
  (* per-root-child boundary proposals written by shard workers during a
     sync round, applied (and cleared) by the coordinator in slot order:
     '\000' none, 'b' backlog, 'r' requeue, 'i' idle *)
  eff_kind : Bytes.t;
  (* per-shard drop scratch: counts plus the dropped handles (newest
     first) so [on_drop] can fire — and the slots recycle — on the
     coordinator after the round *)
  sh_drops : int array;
  sh_dropped : int list array;
}

let nop_leaf_cb _ ~leaf:_ _ = ()

let[@inline] node_now t n =
  if n = t.root && t.root_real then Array.unsafe_get t.now_cache 0 else t.tn.(n)

(* -- The WF2Q+ building block: verbatim Hier_flat (see hier_flat.ml for
   the line-by-line commentary; keeping the float-operation order identical
   is what the epoch=1 lockstep differential enforces) ------------------- *)

let[@inline] linear_v t node ~now = t.v.(node) +. (now -. t.v_time.(node))

(* [Float.max] boxes its float arguments without flambda; bit-identical
   replacement for this code's value domain (no NaNs, no mixed signed
   zeros). *)
let[@inline] fmax (x : float) y = if y > x then y else x

let[@inline] place t node slot =
  let i = t.sbase.(node) + slot in
  if Sched.Float_cmp.le_with_slack t.s_start.(i) t.v.(node) then
    Ih.add t.eligible.(node) ~key:slot ~prio:t.s_finish.(i)
  else Ih.add t.waiting.(node) ~key:slot ~prio:t.s_start.(i)

let p_backlog t node ~child =
  let slot = t.session_in_parent.(child) in
  let head_bits = t.logical_bits.(child) in
  let now = node_now t node in
  let i = t.sbase.(node) + slot in
  let start = fmax t.s_finish.(i) (linear_v t node ~now) in
  t.s_start.(i) <- start;
  t.s_finish.(i) <- start +. (head_bits /. t.s_rate.(i));
  t.s_head.(i) <- head_bits;
  Bytes.set t.s_backlogged i '\001';
  t.backlogged_count.(node) <- t.backlogged_count.(node) + 1;
  place t node slot;
  match t.observers.(node) with
  | None -> ()
  | Some o ->
    o.Sched.Sched_intf.on_backlog ~now ~vtime:(linear_v t node ~now) ~session:slot
      ~head_bits

let p_requeue t node ~child =
  let slot = t.session_in_parent.(child) in
  let head_bits = t.logical_bits.(child) in
  let i = t.sbase.(node) + slot in
  let start = t.s_finish.(i) in
  let finish = start +. (head_bits /. t.s_rate.(i)) in
  t.s_start.(i) <- start;
  t.s_finish.(i) <- finish;
  t.s_head.(i) <- head_bits;
  let e = t.eligible.(node) in
  if Ih.mem e slot then
    if Sched.Float_cmp.le_with_slack start t.v.(node) then
      Ih.update e ~key:slot ~prio:finish
    else begin
      Ih.remove e slot;
      Ih.add t.waiting.(node) ~key:slot ~prio:start
    end
  else begin
    Ih.remove t.waiting.(node) slot;
    place t node slot
  end;
  match t.observers.(node) with
  | None -> ()
  | Some o ->
    let now = node_now t node in
    o.Sched.Sched_intf.on_requeue ~now ~vtime:(linear_v t node ~now) ~session:slot
      ~head_bits

let p_set_idle t node ~child =
  let slot = t.session_in_parent.(child) in
  Bytes.set t.s_backlogged (t.sbase.(node) + slot) '\000';
  t.backlogged_count.(node) <- t.backlogged_count.(node) - 1;
  Ih.remove t.eligible.(node) slot;
  Ih.remove t.waiting.(node) slot;
  match t.observers.(node) with
  | None -> ()
  | Some o ->
    let now = node_now t node in
    o.Sched.Sched_intf.on_idle ~now ~vtime:(linear_v t node ~now) ~session:slot

let p_select t node =
  if t.backlogged_count.(node) = 0 then -1
  else begin
    let now = node_now t node in
    let lin = linear_v t node ~now in
    let e = t.eligible.(node) and w = t.waiting.(node) in
    let threshold =
      if Ih.is_empty e && not (Ih.is_empty w) then
        fmax lin (Ih.min_prio_unsafe w)
      else lin
    in
    let base = t.sbase.(node) in
    let continue = ref true in
    while !continue && not (Ih.is_empty w) do
      let start = Ih.min_prio_unsafe w in
      if Sched.Float_cmp.le_with_slack start threshold then begin
        let slot = Ih.min_key_unsafe w in
        Ih.drop_min w;
        Ih.add e ~key:slot ~prio:t.s_finish.(base + slot)
      end
      else continue := false
    done;
    let slot = Ih.min_key_unsafe e in
    if slot >= 0 then begin
      let service = t.s_head.(base + slot) /. t.rate.(node) in
      t.v.(node) <- threshold +. service;
      t.v_time.(node) <- now +. service;
      match t.observers.(node) with
      | None -> slot
      | Some o ->
        o.Sched.Sched_intf.on_select ~now ~vtime:t.v.(node) ~session:slot;
        slot
    end
    else slot
  end

let drop_leaf_queue t leaf =
  let now = Engine.Simulator.now t.sim in
  let fifo = t.fifos.(leaf) in
  let name = t.names.(leaf) in
  while not (Net.Fifo.is_empty fifo) do
    let p = Net.Fifo.pop_exn fifo in
    t.drops <- t.drops + 1;
    t.on_drop p ~leaf:name now;
    Net.Packet_pool.free t.pkt_pool p
  done

(* -- Worker-side flush path (epoch > 1 only) ----------------------------- *)
(* RESTART-NODE confined to one shard's subtree: identical commits below
   the root; at the root boundary it records the proposal instead of
   touching coordinator state. Observers are all None here (enforced at
   [set_node_observer]), so the observer arms of p_backlog/p_requeue never
   run on a worker domain. *)

let rec restart_in_shard t n =
  let slot = p_select t n in
  if slot >= 0 then begin
    let child = t.child_ids.(t.children_off.(n) + slot) in
    let leaf = t.logical.(child) in
    if leaf < 0 then
      invalid_arg "Subtree: policy selected a child with empty logical queue";
    let bits = t.logical_bits.(child) in
    t.active_child.(n) <- child;
    t.logical.(n) <- leaf;
    t.logical_bits.(n) <- bits;
    t.tn.(n) <- t.tn.(n) +. (bits /. t.rate.(n));
    let was_busy = Bytes.unsafe_get t.busy n <> '\000' in
    Bytes.unsafe_set t.busy n '\001';
    let q = t.parent.(n) in
    if q = t.root then
      Bytes.set t.eff_kind t.session_in_parent.(n) (if was_busy then 'r' else 'b')
    else begin
      if was_busy then p_requeue t q ~child:n else p_backlog t q ~child:n;
      if t.logical.(q) < 0 then restart_in_shard t q
    end
  end
  else begin
    t.active_child.(n) <- -1;
    let was_busy = Bytes.unsafe_get t.busy n <> '\000' in
    Bytes.unsafe_set t.busy n '\000';
    if was_busy then begin
      let q = t.parent.(n) in
      if q = t.root then Bytes.set t.eff_kind t.session_in_parent.(n) 'i'
      else begin
        p_set_idle t q ~child:n;
        if t.logical.(q) < 0 then restart_in_shard t q
      end
    end
  end

(* The shard-private part of ARRIVE for one staged packet (already stamped
   and sequenced at stage time). Mirrors [inject_at]'s post-validation
   body, minus the coordinator-only pieces (drop counter/callback are
   deferred to per-shard scratch, the root backlog becomes a proposal). *)
let flush_arrival t ~shard (pkt : Net.Packet_pool.handle) =
  let leaf = Net.Packet_pool.flow t.pkt_pool pkt in
  if not (Net.Fifo.push t.fifos.(leaf) pkt) then begin
    (* the handle is parked in shard scratch; the coordinator fires
       [on_drop] and frees it after the round (workers never free) *)
    t.sh_drops.(shard) <- t.sh_drops.(shard) + 1;
    t.sh_dropped.(shard) <- pkt :: t.sh_dropped.(shard)
  end
  else if t.logical.(leaf) < 0 then begin
    t.logical.(leaf) <- leaf;
    t.logical_bits.(leaf) <- Net.Packet_pool.size_bits t.pkt_pool pkt;
    let q = t.parent.(leaf) in
    if q = t.root then Bytes.set t.eff_kind t.session_in_parent.(leaf) 'b'
    else begin
      p_backlog t q ~child:leaf;
      if Bytes.get t.busy q = '\000' then restart_in_shard t q
    end
  end

let flush_shard t shard =
  let mb = t.mailboxes.(shard) in
  let rec loop () =
    match Spsc.try_pop mb with
    | None -> ()
    | Some pkt ->
      flush_arrival t ~shard pkt;
      loop ()
  in
  loop ()

(* -- Coordinator: the sequential procedures (verbatim Hier_flat) plus the
   epoch sync ------------------------------------------------------------- *)

let rec restart_node t n =
  let slot = p_select t n in
  if slot >= 0 then begin
    let child = t.child_ids.(t.children_off.(n) + slot) in
    let leaf = t.logical.(child) in
    if leaf < 0 then
      invalid_arg "Subtree: policy selected a child with empty logical queue";
    let bits = t.logical_bits.(child) in
    t.active_child.(n) <- child;
    t.logical.(n) <- leaf;
    t.logical_bits.(n) <- bits;
    t.tn.(n) <- t.tn.(n) +. (bits /. t.rate.(n));
    let was_busy = Bytes.unsafe_get t.busy n <> '\000' in
    Bytes.unsafe_set t.busy n '\001';
    if n = t.root then start_transmission t
    else begin
      let q = t.parent.(n) in
      (match t.observers.(q) with
      | None -> ()
      | Some o ->
        let q_now = node_now t q in
        o.Sched.Sched_intf.on_arrive ~now:q_now
          ~vtime:(linear_v t q ~now:q_now)
          ~session:t.session_in_parent.(n) ~size_bits:bits);
      if was_busy then p_requeue t q ~child:n else p_backlog t q ~child:n;
      if t.logical.(q) < 0 then restart_node t q
    end
  end
  else begin
    t.active_child.(n) <- -1;
    let was_busy = Bytes.unsafe_get t.busy n <> '\000' in
    Bytes.unsafe_set t.busy n '\000';
    if n <> t.root && was_busy then begin
      let q = t.parent.(n) in
      p_set_idle t q ~child:n;
      if t.logical.(q) < 0 then restart_node t q
    end
  end

and start_transmission t =
  if not t.link_busy then begin
    let leaf = t.logical.(t.root) in
    if leaf >= 0 then begin
      let pkt = Net.Fifo.peek_exn t.fifos.(leaf) in
      t.link_busy <- true;
      t.in_flight_leaf <- leaf;
      if t.on_transmit_start != nop_leaf_cb then
        t.on_transmit_start pkt ~leaf:t.names.(leaf) (Engine.Simulator.now t.sim);
      let duration = Net.Packet_pool.size_bits t.pkt_pool pkt /. t.rate.(t.root) in
      let due = Engine.Simulator.now t.sim +. duration in
      if t.in_batch then begin
        t.batch_has <- true;
        t.batch_due <- due
      end
      else ignore (Engine.Simulator.schedule t.sim ~at:due t.complete_cb)
    end
  end

and drain t leaf0 =
  let sim = t.sim in
  let steps = ref 1 in
  let leaf = ref leaf0 in
  let continue = ref true in
  while !continue do
    t.in_batch <- true;
    t.batch_has <- false;
    complete_transmission t (Net.Fifo.peek_exn t.fifos.(!leaf));
    t.in_batch <- false;
    if not t.batch_has then continue := false
    else begin
      let due = t.batch_due in
      if
        !steps < t.burst_max
        && due <= Engine.Simulator.run_horizon sim
        && due < Engine.Simulator.peek_time sim
      then begin
        Engine.Simulator.advance_clock sim ~to_:due;
        incr steps;
        let l = t.in_flight_leaf in
        if l < 0 then invalid_arg "Subtree: drain lost the in-flight leaf";
        t.in_flight_leaf <- -1;
        leaf := l
      end
      else begin
        ignore (Engine.Simulator.schedule sim ~at:due t.complete_cb);
        continue := false
      end
    end
  done

and complete_transmission t pkt =
  t.link_busy <- false;
  let now = Engine.Simulator.now t.sim in
  Array.unsafe_set t.now_cache 0 now;
  if t.epoch > 1 then begin
    (* epoch boundary: integrate staged arrivals before RESET-PATH picks
       the next packet, so a proposal is never more than epoch-1
       departures stale. The link is idle and the departing packet still
       owns [logical] along its path, so applying proposals here cannot
       start a transmission out from under the reset. *)
    t.since_sync <- t.since_sync + 1;
    if t.staged_total > 0 && t.since_sync >= t.epoch - 1 then sync_now t
  end;
  let leaf = Net.Packet_pool.flow t.pkt_pool pkt in
  let bits = Net.Packet_pool.size_bits t.pkt_pool pkt in
  let off = t.path_off.(leaf) and len = t.path_len.(leaf) in
  for k = 0 to len - 1 do
    let n = t.path_nodes.(off + k) in
    t.departed_bits.(n) <- t.departed_bits.(n) +. bits
  done;
  t.on_depart pkt ~leaf:t.names.(leaf) now;
  reset_path t leaf;
  (* recycle only after callbacks fired and RESET-PATH dequeued the head *)
  Net.Packet_pool.free t.pkt_pool pkt;
  (* never leave the link idle with staged work: the sequential schedule
     would have started one of those packets already *)
  if t.epoch > 1 && (not t.link_busy) && t.staged_total > 0 then sync_now t

and reset_path t leaf =
  let off = t.path_off.(leaf) and len = t.path_len.(leaf) in
  for k = len - 1 downto 0 do
    let n = t.path_nodes.(off + k) in
    t.logical.(n) <- -1;
    t.active_child.(n) <- -1
  done;
  let fifo = t.fifos.(leaf) in
  Net.Fifo.drop_head fifo;
  let q = t.parent.(leaf) in
  (match Bytes.get t.lifecycle leaf with
  | '\002' ->
    drop_leaf_queue t leaf;
    p_set_idle t q ~child:leaf;
    Bytes.set t.lifecycle leaf '\003'
  | state ->
    if not (Net.Fifo.is_empty fifo) then begin
      let next = Net.Fifo.peek_exn fifo in
      t.logical.(leaf) <- leaf;
      t.logical_bits.(leaf) <- Net.Packet_pool.size_bits t.pkt_pool next;
      p_requeue t q ~child:leaf
    end
    else begin
      p_set_idle t q ~child:leaf;
      if state = '\001' then Bytes.set t.lifecycle leaf '\003'
    end);
  restart_node t q

and sync_now t =
  t.since_sync <- 0;
  if t.staged_total > 0 then begin
    t.staged_total <- 0;
    t.syncs <- t.syncs + 1;
    (match t.pool with
    | Some pool ->
      let round = Pool.Persistent.submit pool ~tasks:t.shards ~f:(flush_shard t) in
      ignore (Pool.Persistent.await round)
    | None ->
      for s = 0 to t.shards - 1 do
        flush_shard t s
      done);
    apply_proposals t
  end

and apply_proposals t =
  (* canonical slot order, so the root-side heap insertion order — and with
     it every tie-break — is independent of the shard partition *)
  let off = t.children_off.(t.root) in
  for slot = 0 to t.children_len.(t.root) - 1 do
    match Bytes.get t.eff_kind slot with
    | '\000' -> ()
    | kind ->
      Bytes.set t.eff_kind slot '\000';
      let child = t.child_ids.(off + slot) in
      (match kind with
      | 'r' -> p_requeue t t.root ~child
      | 'b' -> p_backlog t t.root ~child
      | _ -> p_set_idle t t.root ~child);
      if t.logical.(t.root) < 0 then restart_node t t.root
  done;
  for s = 0 to t.shards - 1 do
    if t.sh_drops.(s) > 0 then begin
      t.drops <- t.drops + t.sh_drops.(s);
      t.sh_drops.(s) <- 0;
      List.iter
        (fun (p : Net.Packet_pool.handle) ->
          t.on_drop p
            ~leaf:t.names.(Net.Packet_pool.flow t.pkt_pool p)
            (Net.Packet_pool.arrival t.pkt_pool p);
          Net.Packet_pool.free t.pkt_pool p)
        (List.rev t.sh_dropped.(s));
      t.sh_dropped.(s) <- []
    end
  done

let sync_if_staged t =
  if t.epoch > 1 && t.staged_total > 0 then begin
    Array.unsafe_set t.now_cache 0 (Engine.Simulator.now t.sim);
    sync_now t
  end

(* -- Construction --------------------------------------------------------- *)

let create ~sim ~spec ?(root_clock = `Real_time) ?on_depart ?on_drop
    ?(burst_max = 1) ?shards ?(workers = 0) ?(epoch = 1)
    ?(mailbox_capacity = 256) () =
  if burst_max < 1 then invalid_arg "Subtree.create: burst_max must be >= 1";
  if epoch < 1 then invalid_arg "Subtree.create: epoch must be >= 1";
  if workers < 0 then invalid_arg "Subtree.create: workers must be >= 0";
  if mailbox_capacity < 1 then
    invalid_arg "Subtree.create: mailbox_capacity must be >= 1";
  (match shards with
  | Some s when s < 1 -> invalid_arg "Subtree.create: shards must be >= 1"
  | _ -> ());
  let module Class_tree = Hpfq.Class_tree in
  (match Class_tree.validate spec with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Subtree.create: invalid tree: " ^ String.concat "; " errors));
  (match spec with
  | Class_tree.Leaf _ -> invalid_arg "Subtree.create: root must be an interior node"
  | Class_tree.Node _ -> ());
  let n_nodes = Class_tree.count_nodes spec in
  let parent = Array.make n_nodes (-1) in
  let rate = Array.make n_nodes 0.0 in
  let level = Array.make n_nodes 0 in
  let session_in_parent = Array.make n_nodes (-1) in
  let children_off = Array.make n_nodes 0 in
  let children_len = Array.make n_nodes 0 in
  let names = Array.make n_nodes "" in
  let by_name = Hashtbl.create 16 in
  let is_leaf = Array.make n_nodes false in
  let capacity = Array.make n_nodes None in
  let counter = ref 0 in
  let leaf_list = ref [] in
  let rec number ~lvl ~par s =
    let id = !counter in
    incr counter;
    names.(id) <- Class_tree.name s;
    rate.(id) <- Class_tree.rate s;
    level.(id) <- lvl;
    parent.(id) <- par;
    Hashtbl.replace by_name names.(id) id;
    (match s with
    | Class_tree.Leaf { queue_capacity_bits; _ } ->
      is_leaf.(id) <- true;
      capacity.(id) <- queue_capacity_bits;
      leaf_list := (names.(id), id) :: !leaf_list
    | Class_tree.Node _ -> ());
    List.iter
      (fun c -> ignore (number ~lvl:(lvl + 1) ~par:id c))
      (Class_tree.children s);
    id
  in
  let root = number ~lvl:0 ~par:(-1) spec in
  let kids = Array.make n_nodes [] in
  for id = n_nodes - 1 downto 1 do
    kids.(parent.(id)) <- id :: kids.(parent.(id))
  done;
  let total_children = n_nodes - 1 in
  let child_ids = Array.make (max 1 total_children) (-1) in
  let next_off = ref 0 in
  for id = 0 to n_nodes - 1 do
    let cs = kids.(id) in
    children_off.(id) <- !next_off;
    List.iteri
      (fun slot c ->
        child_ids.(!next_off + slot) <- c;
        session_in_parent.(c) <- slot)
      cs;
    children_len.(id) <- List.length cs;
    next_off := !next_off + children_len.(id)
  done;
  let sbase = Array.make n_nodes 0 in
  let total_sessions = ref 0 in
  for id = 0 to n_nodes - 1 do
    sbase.(id) <- !total_sessions;
    total_sessions := !total_sessions + children_len.(id)
  done;
  let total_sessions = !total_sessions in
  let s_rate = Array.make (max 1 total_sessions) 0.0 in
  for id = 1 to n_nodes - 1 do
    s_rate.(sbase.(parent.(id)) + session_in_parent.(id)) <- rate.(id)
  done;
  let path_off = Array.make n_nodes 0 in
  let path_len = Array.make n_nodes 0 in
  let total_path = ref 0 in
  for id = 0 to n_nodes - 1 do
    if is_leaf.(id) then begin
      path_off.(id) <- !total_path;
      path_len.(id) <- level.(id) + 1;
      total_path := !total_path + path_len.(id)
    end
  done;
  let path_nodes = Array.make (max 1 !total_path) (-1) in
  for id = 0 to n_nodes - 1 do
    if is_leaf.(id) then begin
      let n = ref id in
      for k = 0 to path_len.(id) - 1 do
        path_nodes.(path_off.(id) + k) <- !n;
        n := parent.(!n)
      done
    end
  done;
  let pkt_pool = Net.Packet_pool.create () in
  let dummy_fifo = Net.Fifo.create ~pool:pkt_pool () in
  let dummy_heap = Ih.create 1 in
  let fifos =
    Array.init n_nodes (fun id ->
        if is_leaf.(id) then
          Net.Fifo.create ?capacity_bits:capacity.(id) ~pool:pkt_pool ()
        else dummy_fifo)
  in
  let eligible =
    Array.init n_nodes (fun id ->
        if is_leaf.(id) then dummy_heap else Ih.create (max 1 children_len.(id)))
  in
  let waiting =
    Array.init n_nodes (fun id ->
        if is_leaf.(id) then dummy_heap else Ih.create (max 1 children_len.(id)))
  in
  (* shard assignment: root-child subtrees round-robin over the effective
     shard count; preorder contiguity means one pass suffices *)
  let root_children = children_len.(root) in
  let shards =
    match shards with
    | Some s -> max 1 (min s root_children)
    | None -> max 1 root_children
  in
  let node_shard = Array.make n_nodes (-1) in
  let cur = ref (-1) in
  for id = 0 to n_nodes - 1 do
    if id <> root then begin
      if parent.(id) = root then cur := session_in_parent.(id) mod shards;
      node_shard.(id) <- !cur
    end
  done;
  let pool =
    if epoch > 1 && workers > 0 then Some (Pool.Persistent.create ~domains:workers ())
    else None
  in
  let t =
    {
      sim;
      pkt_pool;
      n_nodes;
      root;
      root_real = (root_clock = `Real_time);
      parent;
      rate;
      level;
      session_in_parent;
      children_off;
      children_len;
      child_ids;
      names;
      by_name;
      leaf_list = List.rev !leaf_list;
      path_off;
      path_len;
      path_nodes;
      tn = Array.make n_nodes 0.0;
      departed_bits = Array.make n_nodes 0.0;
      busy = Bytes.make n_nodes '\000';
      active_child = Array.make n_nodes (-1);
      logical = Array.make n_nodes (-1);
      logical_bits = Array.make n_nodes 0.0;
      fifos;
      next_seq = Array.make n_nodes 1;
      lifecycle = Bytes.make n_nodes '\000';
      v = Array.make n_nodes 0.0;
      v_time = Array.make n_nodes 0.0;
      backlogged_count = Array.make n_nodes 0;
      eligible;
      waiting;
      observers = Array.make n_nodes None;
      sbase;
      s_rate;
      s_start = Array.make (max 1 total_sessions) 0.0;
      s_finish = Array.make (max 1 total_sessions) 0.0;
      s_head = Array.make (max 1 total_sessions) 0.0;
      s_backlogged = Bytes.make (max 1 total_sessions) '\000';
      now_cache = [| 0.0 |];
      on_depart = nop_leaf_cb;
      on_drop = nop_leaf_cb;
      on_transmit_start = nop_leaf_cb;
      link_busy = false;
      drops = 0;
      in_flight_leaf = -1;
      complete_cb = ignore;
      burst_max;
      in_batch = false;
      batch_has = false;
      batch_due = 0.0;
      shards;
      epoch;
      pool;
      node_shard;
      mailboxes = Array.init shards (fun _ -> Spsc.create ~capacity:mailbox_capacity);
      staged_total = 0;
      since_sync = 0;
      syncs = 0;
      eff_kind = Bytes.make (max 1 root_children) '\000';
      sh_drops = Array.make shards 0;
      sh_dropped = Array.make shards [];
    }
  in
  (match on_depart with
  | None -> ()
  | Some f ->
    t.on_depart <-
      (fun h ~leaf now -> f (Net.Packet_pool.to_packet pkt_pool h) ~leaf now));
  (match on_drop with
  | None -> ()
  | Some f ->
    t.on_drop <-
      (fun h ~leaf now -> f (Net.Packet_pool.to_packet pkt_pool h) ~leaf now));
  t.complete_cb <-
    (fun () ->
      let leaf = t.in_flight_leaf in
      if leaf < 0 then
        invalid_arg "Subtree: transmission completed with nothing in flight";
      t.in_flight_leaf <- -1;
      drain t leaf);
  Log.info (fun m ->
      m "created subtree-sharded H-WF2Q+ server: %d nodes, %d shards, epoch %d, %d workers"
        n_nodes shards epoch workers);
  t

let shutdown t = Option.iter Pool.Persistent.shutdown t.pool
let shards t = t.shards
let epoch t = t.epoch
let workers t = match t.pool with Some p -> Pool.Persistent.domains p | None -> 0
let sync_rounds t = t.syncs

(* -- Public operations (verbatim Hier_flat where no epoch hook applies) --- *)

let node_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None -> raise Not_found

let leaf_id t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id when t.children_len.(id) = 0 -> Hpfq.Hier.unsafe_leaf_of_int id
  | Some id ->
    invalid_arg
      (Printf.sprintf "Subtree.leaf_id: %S is an interior node, not a leaf"
         t.names.(id))
  | None -> raise Not_found

let leaf_name t (id : Hpfq.Hier.leaf) = t.names.((id :> int))

let leaf_ids t =
  List.map (fun (nm, id) -> (nm, Hpfq.Hier.unsafe_leaf_of_int id)) t.leaf_list

let inject_at t ~mark ~leaf ~size_bits ~now =
  if t.children_len.(leaf) <> 0 then invalid_arg "Subtree.inject: not a leaf";
  if Bytes.get t.lifecycle leaf <> '\000' then
    invalid_arg "Subtree.inject: leaf is closed";
  let pkt =
    Net.Packet_pool.alloc t.pkt_pool ~mark ~flow:leaf ~seq:t.next_seq.(leaf)
      ~size_bits ~arrival:now
  in
  t.next_seq.(leaf) <- t.next_seq.(leaf) + 1;
  if not (Net.Fifo.push t.fifos.(leaf) pkt) then begin
    t.drops <- t.drops + 1;
    t.on_drop pkt ~leaf:t.names.(leaf) now;
    Net.Packet_pool.free t.pkt_pool pkt;
    pkt
  end
  else begin
    let q = t.parent.(leaf) in
    (match t.observers.(q) with
    | None -> ()
    | Some o ->
      let q_now = node_now t q in
      o.Sched.Sched_intf.on_arrive ~now:q_now
        ~vtime:(linear_v t q ~now:q_now)
        ~session:t.session_in_parent.(leaf) ~size_bits);
    if t.logical.(leaf) < 0 then begin
      t.logical.(leaf) <- leaf;
      t.logical_bits.(leaf) <- size_bits;
      p_backlog t q ~child:leaf;
      if Bytes.get t.busy q = '\000' then restart_node t q
    end;
    pkt
  end

let inject_one t ~mark ~leaf ~size_bits =
  let now = Engine.Simulator.now t.sim in
  Array.unsafe_set t.now_cache 0 now;
  inject_at t ~mark ~leaf ~size_bits ~now

(* epoch > 1: arrivals that land while the link is transmitting are staged
   (stamped and sequenced now, integrated at the next sync); arrivals on an
   idle link take the exact inline path — the sequential schedule would
   start them immediately, and deferring them would break the lag bound. *)
let stage t (pkt : Net.Packet_pool.handle) =
  let s = t.node_shard.(Net.Packet_pool.flow t.pkt_pool pkt) in
  if not (Spsc.try_push t.mailboxes.(s) pkt) then begin
    (* mailbox full: an early epoch boundary, then the push must succeed *)
    Array.unsafe_set t.now_cache 0 (Engine.Simulator.now t.sim);
    sync_now t;
    Spsc.push t.mailboxes.(s) pkt
  end;
  t.staged_total <- t.staged_total + 1

let inject ?(mark = 0) t ~(leaf : Hpfq.Hier.leaf) ~size_bits =
  let leaf = (leaf :> int) in
  if t.epoch = 1 || ((not t.link_busy) && t.staged_total = 0) then
    inject_one t ~mark ~leaf ~size_bits
  else begin
    if t.children_len.(leaf) <> 0 then invalid_arg "Subtree.inject: not a leaf";
    if Bytes.get t.lifecycle leaf <> '\000' then
      invalid_arg "Subtree.inject: leaf is closed";
    let now = Engine.Simulator.now t.sim in
    let pkt =
      Net.Packet_pool.alloc t.pkt_pool ~mark ~flow:leaf ~seq:t.next_seq.(leaf)
        ~size_bits ~arrival:now
    in
    t.next_seq.(leaf) <- t.next_seq.(leaf) + 1;
    stage t pkt;
    pkt
  end

let inject_many ?(mark = 0) t ~(leaf : Hpfq.Hier.leaf) ~size_bits ~count =
  if count < 0 then invalid_arg "Subtree.inject_many: negative count";
  if count > 0 then
    if t.epoch = 1 then begin
      let leaf = (leaf :> int) in
      let now = Engine.Simulator.now t.sim in
      Array.unsafe_set t.now_cache 0 now;
      for _ = 1 to count do
        ignore (inject_at t ~mark ~leaf ~size_bits ~now)
      done
    end
    else
      for _ = 1 to count do
        ignore (inject ~mark t ~leaf ~size_bits)
      done

(* -- Leaf lifecycle (synchronous: an epoch boundary first, then verbatim
   Hier_flat semantics on fully integrated state) ------------------------- *)

let leaf_state t ~(leaf : Hpfq.Hier.leaf) =
  match Bytes.get t.lifecycle (leaf :> int) with
  | '\000' -> `Open
  | '\001' | '\002' -> `Closing
  | _ -> `Closed

let close_leaf t ~(leaf : Hpfq.Hier.leaf) ~policy =
  sync_if_staged t;
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Subtree.close_leaf: not a leaf";
  if Bytes.get t.lifecycle leaf <> '\000' then
    invalid_arg "Subtree.close_leaf: leaf already closed or closing";
  Array.unsafe_set t.now_cache 0 (Engine.Simulator.now t.sim);
  let q = t.parent.(leaf) in
  if t.logical.(leaf) < 0 then Bytes.set t.lifecycle leaf '\003'
  else
    match policy with
    | `Drain -> Bytes.set t.lifecycle leaf '\001'
    | `Drop ->
      if t.link_busy && t.in_flight_leaf = leaf then
        Bytes.set t.lifecycle leaf '\002'
      else begin
        drop_leaf_queue t leaf;
        t.logical.(leaf) <- -1;
        let m = ref q in
        let walking = ref true in
        while !walking do
          if t.logical.(!m) = leaf then begin
            t.logical.(!m) <- -1;
            t.active_child.(!m) <- -1;
            if !m = t.root then walking := false else m := t.parent.(!m)
          end
          else walking := false
        done;
        let slot = t.session_in_parent.(leaf) in
        let i = t.sbase.(q) + slot in
        if Bytes.get t.s_backlogged i <> '\000' then begin
          Ih.remove t.eligible.(q) slot;
          Ih.remove t.waiting.(q) slot;
          Bytes.set t.s_backlogged i '\000';
          t.backlogged_count.(q) <- t.backlogged_count.(q) - 1
        end;
        Bytes.set t.lifecycle leaf '\003';
        if t.logical.(q) < 0 then restart_node t q
      end

let reopen_leaf ?rate t ~(leaf : Hpfq.Hier.leaf) =
  sync_if_staged t;
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Subtree.reopen_leaf: not a leaf";
  (match Bytes.get t.lifecycle leaf with
  | '\003' -> ()
  | '\000' -> invalid_arg "Subtree.reopen_leaf: leaf is open"
  | _ -> invalid_arg "Subtree.reopen_leaf: close still in progress");
  let q = t.parent.(leaf) in
  let i = t.sbase.(q) + t.session_in_parent.(leaf) in
  (match rate with
  | Some r ->
    if r <= 0.0 then invalid_arg "Subtree.reopen_leaf: rate must be positive";
    t.rate.(leaf) <- r;
    t.s_rate.(i) <- r
  | None -> ());
  t.s_start.(i) <- 0.0;
  t.s_finish.(i) <- 0.0;
  t.s_head.(i) <- 0.0;
  Bytes.set t.s_backlogged i '\000';
  Bytes.set t.lifecycle leaf '\000'

(* -- Accessors (an epoch boundary first, so readings reflect every staged
   arrival — exact at epoch 1, where nothing is ever staged) -------------- *)

let queue_bits t ~(leaf : Hpfq.Hier.leaf) =
  sync_if_staged t;
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Subtree.queue_bits: not a leaf";
  Net.Fifo.bits t.fifos.(leaf)

let departed_bits t ~node =
  sync_if_staged t;
  t.departed_bits.(node_by_name t node)

let ref_time t ~node =
  sync_if_staged t;
  t.tn.(node_by_name t node)

let node_virtual_time t ~node =
  sync_if_staged t;
  let id = node_by_name t node in
  if t.children_len.(id) = 0 then
    invalid_arg "Subtree.node_virtual_time: leaf has no policy";
  Array.unsafe_set t.now_cache 0 (Engine.Simulator.now t.sim);
  linear_v t id ~now:(node_now t id)

let link_busy t = t.link_busy

let drops t =
  sync_if_staged t;
  t.drops

let set_burst_max t n =
  if n < 1 then invalid_arg "Subtree.set_burst_max: burst_max must be >= 1";
  t.burst_max <- n

let burst_max t = t.burst_max

(* -- Observability -------------------------------------------------------- *)

let compose_leaf_cb f g =
  if f == nop_leaf_cb then g
  else fun pkt ~leaf now ->
    f pkt ~leaf now;
    g pkt ~leaf now

let add_depart_handle_hook t f = t.on_depart <- compose_leaf_cb t.on_depart f
let add_drop_handle_hook t f = t.on_drop <- compose_leaf_cb t.on_drop f

let add_transmit_start_handle_hook t f =
  t.on_transmit_start <- compose_leaf_cb t.on_transmit_start f

(* Boxed compat wrappers: materialise a [Net.Packet.t] per event. *)
let boxed t f =
 fun h ~leaf now -> f (Net.Packet_pool.to_packet t.pkt_pool h) ~leaf now

let add_depart_hook t f = add_depart_handle_hook t (boxed t f)
let add_drop_hook t f = add_drop_handle_hook t (boxed t f)
let add_transmit_start_hook t f = add_transmit_start_handle_hook t (boxed t f)
let pool t = t.pkt_pool

let root_name t = t.names.(t.root)
let node_name t id = t.names.(id)
let node_count t = t.n_nodes
let node_shard t id = t.node_shard.(id)

let leaf_path t ~(leaf : Hpfq.Hier.leaf) =
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Subtree.leaf_path: not a leaf";
  Array.sub t.path_nodes t.path_off.(leaf) t.path_len.(leaf)

let iter_interior t f =
  for id = 0 to t.n_nodes - 1 do
    if t.children_len.(id) > 0 then
      f ~id ~name:t.names.(id) ~level:t.level.(id)
        ~children:(Array.sub t.child_ids t.children_off.(id) t.children_len.(id))
  done

let set_node_observer_id t ~node observer =
  if t.epoch > 1 && observer <> None then
    invalid_arg "Subtree.set_node_observer_id: observers require epoch = 1";
  if node < 0 || node >= t.n_nodes || t.children_len.(node) = 0 then
    invalid_arg "Subtree.set_node_observer_id: not an interior node";
  t.observers.(node) <- observer

let set_node_observer t ~node observer =
  if t.epoch > 1 && observer <> None then
    invalid_arg "Subtree.set_node_observer: observers require epoch = 1";
  let id = node_by_name t node in
  if t.children_len.(id) = 0 then
    invalid_arg "Subtree.set_node_observer: leaf has no policy";
  t.observers.(id) <- observer

(* -- Hier_engine registration --------------------------------------------- *)

let ops_of t =
  {
    Hpfq.Hier_engine.st_kind_name =
      Printf.sprintf "subtree(shards=%d,epoch=%d,workers=%d)" t.shards t.epoch
        (workers t);
    st_set_burst_max = set_burst_max t;
    st_burst_max = (fun () -> burst_max t);
    st_leaf_id = leaf_id t;
    st_leaf_name = leaf_name t;
    st_leaf_ids = (fun () -> leaf_ids t);
    st_inject = (fun ~mark ~leaf ~size_bits -> inject ~mark t ~leaf ~size_bits);
    st_inject_many =
      (fun ~mark ~leaf ~size_bits ~count ->
        inject_many ~mark t ~leaf ~size_bits ~count);
    st_close_leaf = (fun ~leaf ~policy -> close_leaf t ~leaf ~policy);
    st_reopen_leaf = (fun ~rate ~leaf -> reopen_leaf ?rate t ~leaf);
    st_leaf_state = (fun ~leaf -> leaf_state t ~leaf);
    st_queue_bits = (fun ~leaf -> queue_bits t ~leaf);
    st_departed_bits = (fun ~node -> departed_bits t ~node);
    st_ref_time = (fun ~node -> ref_time t ~node);
    st_node_virtual_time = (fun ~node -> node_virtual_time t ~node);
    st_link_busy = (fun () -> link_busy t);
    st_drops = (fun () -> drops t);
    st_add_depart_hook = add_depart_hook t;
    st_add_drop_hook = add_drop_hook t;
    st_add_transmit_start_hook = add_transmit_start_hook t;
    st_add_depart_handle_hook = add_depart_handle_hook t;
    st_add_drop_handle_hook = add_drop_handle_hook t;
    st_add_transmit_start_handle_hook = add_transmit_start_handle_hook t;
    st_pool = (fun () -> pool t);
    st_root_name = (fun () -> root_name t);
    st_node_name = node_name t;
    st_node_count = (fun () -> node_count t);
    st_leaf_path = (fun ~leaf -> leaf_path t ~leaf);
  }

let register () =
  Hpfq.Hier_engine.set_subtree_builder
    (fun ~sim ~spec ~root_clock ~on_depart ~on_drop ~burst_max ~shards ~workers
         ~epoch ~mailbox_capacity ->
      let t =
        create ~sim ~spec ~root_clock ?on_depart ?on_drop ~burst_max ?shards
          ?workers ~epoch ?mailbox_capacity ()
      in
      ops_of t)
