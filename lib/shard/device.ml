module Rng = Engine.Rng
module Sim = Engine.Simulator

type workload = {
  flows_per_link : int;
  rounds : int;
  burst_max : int;
  packet_bits : float;
  overload : float;
  seed : int64;
}

let default_workload ~rounds =
  {
    flows_per_link = 4;
    rounds;
    burst_max = 8;
    packet_bits = 8.0 *. 1024.0;
    overload = 1.2;
    seed = 1L;
  }

type t = {
  links : int;
  shards : int;
  workers : int;
  mailbox_capacity : int;
  engine : Hpfq.Hier_engine.choice;
  spec : Hpfq.Class_tree.t;
  workload : workload;
  record_traces : bool;
  observe : bool;
}

(* One link of a mid-range device: 1 Gbps split 60/40 over two classes of
   two leaves each — enough hierarchy that the flat engine's W_n crediting
   and per-node virtual clocks are all exercised, small enough that a
   1024-link device stays cheap to build. *)
let default_spec ~queue_cap_pkts ~packet_bits =
  let r = 1e9 in
  let open Hpfq.Class_tree in
  with_queue_caps
    (float_of_int queue_cap_pkts *. packet_bits)
    (node "link" ~rate:r
       [
         node "hi" ~rate:(0.6 *. r)
           [ leaf "hi/a" ~rate:(0.3 *. r); leaf "hi/b" ~rate:(0.3 *. r) ];
         node "lo" ~rate:(0.4 *. r)
           [ leaf "lo/a" ~rate:(0.2 *. r); leaf "lo/b" ~rate:(0.2 *. r) ];
       ])

let create ?(workers = 1) ?shards ?(mailbox_capacity = 256)
    ?(engine = `Auto) ?spec ?(queue_cap_pkts = 64) ?workload
    ?(record_traces = false) ?(observe = false) ~links () =
  let shards = match shards with Some s -> s | None -> workers in
  if links < 1 then invalid_arg "Device.create: links must be >= 1";
  if workers < 1 then invalid_arg "Device.create: workers must be >= 1";
  if shards < 1 then invalid_arg "Device.create: shards must be >= 1";
  if mailbox_capacity < 1 then
    invalid_arg "Device.create: mailbox_capacity must be >= 1";
  let workload =
    match workload with Some w -> w | None -> default_workload ~rounds:50
  in
  if workload.flows_per_link < 1 then
    invalid_arg "Device.create: flows_per_link must be >= 1";
  if workload.rounds < 0 then invalid_arg "Device.create: rounds must be >= 0";
  if workload.burst_max < 0 then
    invalid_arg "Device.create: burst_max must be >= 0";
  if workload.packet_bits <= 0.0 then
    invalid_arg "Device.create: packet_bits must be positive";
  if workload.overload <= 0.0 then
    invalid_arg "Device.create: overload must be positive";
  let spec =
    match spec with
    | Some s -> s
    | None -> default_spec ~queue_cap_pkts ~packet_bits:workload.packet_bits
  in
  (match Hpfq.Class_tree.validate spec with
  | Ok () -> ()
  | Error es ->
    invalid_arg ("Device.create: invalid spec: " ^ String.concat "; " es));
  { links; shards; workers; mailbox_capacity; engine; spec; workload;
    record_traces; observe }

let links t = t.links
let shards t = t.shards
let workers t = t.workers
let spec t = t.spec
let workload t = t.workload

(* Mean offered load per link per round is [flows_per_link * burst_max/2]
   packets; the round period is sized so that offered/capacity equals the
   requested overload factor. *)
let round_dt t =
  let w = t.workload in
  let offered_bits =
    float_of_int w.flows_per_link
    *. (float_of_int w.burst_max /. 2.0)
    *. w.packet_bits
  in
  offered_bits /. (Hpfq.Class_tree.rate t.spec *. w.overload)

(* ---- trace fingerprinting ---- *)

let golden = 0x9E3779B97F4A7C15L

let fold_hash h k = Rng.mix64 (Int64.add (Int64.mul h golden) k)

let depart_key ~flow ~seq ~time =
  Rng.mix64
    (Int64.logxor
       (Int64.of_int ((flow * 0x3779) + seq))
       (Int64.bits_of_float time))

let hash_hex h = Printf.sprintf "%016Lx" h

(* ---- results ---- *)

type link_result = {
  link : int;
  shard : int;
  departed_pkts : int;
  departed_bits : float;
  drops : int;
  events : int;
  final_time : float;
  trace_hash : int64;
  trace : (int * int * float) array option;
  sim : Engine.Simulator.t;
  stats : Engine.Simulator.stats;
  metrics : Stats.Report.t option;
}

type result = {
  per_link : link_result array;
  wall_s : float;
  total_pkts : int;
  total_bits : float;
  total_drops : int;
  total_events : int;
  device_hash : int64;
}

(* ---- the per-link simulation (shared by workers and the reference) ---- *)

type link_state = {
  ls_link : int;
  ls_sim : Sim.t;
  ls_engine : Hpfq.Hier_engine.t;
  ls_leaf_ids : Hpfq.Hier.leaf array; (* leaf slot (Class_tree.leaves order) -> leaf *)
  ls_pkts : int ref;
  ls_bits : float ref;
  ls_hash : int64 ref;
  ls_trace : (int * int * float) list ref; (* newest first *)
  mutable ls_synced : float; (* sim advanced to this ingress stamp *)
  ls_trace_obs : Obs.Trace.t option;
}

let make_link_state t ~config ~link =
  let sim = Sim.create_configured config in
  let pkts = ref 0 and bits = ref 0.0 and hash = ref 0L in
  let trace = ref [] in
  let engine =
    (* the workload's ingress burst cap doubles as the link's drain cap:
       backlogged shards retire whole bursts per simulator event (the
       determinism contract keeps the device hash unchanged) *)
    Hpfq.Hier_engine.create ~sim ~spec:t.spec
      ~factory:Hpfq.Disciplines.wf2q_plus ~engine:t.engine
      ~burst_max:(max 1 t.workload.burst_max) ()
  in
  (* handle hook: every field is read from the pool while the handle is
     live, so no packet record is materialised per departure *)
  let pool = Hpfq.Hier_engine.pool engine in
  Hpfq.Hier_engine.add_depart_handle_hook engine (fun h ~leaf:_ time ->
      incr pkts;
      bits := !bits +. Net.Packet_pool.size_bits pool h;
      let flow = Net.Packet_pool.flow pool h
      and seq = Net.Packet_pool.seq pool h in
      hash := fold_hash !hash (depart_key ~flow ~seq ~time);
      if t.record_traces then trace := (flow, seq, time) :: !trace);
  let leaf_ids =
    Array.of_list
      (List.map
         (fun (name, _) -> Hpfq.Hier_engine.leaf_id engine name)
         (Hpfq.Class_tree.leaves t.spec))
  in
  let trace_obs =
    if t.observe then begin
      let tr = Obs.Trace.attach_engine ~capacity:1024 engine in
      Obs.Trace.attach_sim tr sim;
      Some tr
    end
    else None
  in
  {
    ls_link = link;
    ls_sim = sim;
    ls_engine = engine;
    ls_leaf_ids = leaf_ids;
    ls_pkts = pkts;
    ls_bits = bits;
    ls_hash = hash;
    ls_trace = trace;
    ls_synced = -1.0;
    ls_trace_obs = trace_obs;
  }

let sync_to s ~at =
  if s.ls_synced < at then begin
    Sim.run ~until:at s.ls_sim;
    s.ls_synced <- at
  end

let inject s ~leaf_slot ~size_bits ~count =
  Hpfq.Hier_engine.inject_many s.ls_engine ~leaf:s.ls_leaf_ids.(leaf_slot)
    ~size_bits ~count

let finish t s ~shard =
  Sim.run s.ls_sim; (* drain: every queued packet departs *)
  Option.iter Obs.Trace.detach s.ls_trace_obs;
  {
    link = s.ls_link;
    shard;
    departed_pkts = !(s.ls_pkts);
    departed_bits = !(s.ls_bits);
    drops = Hpfq.Hier_engine.drops s.ls_engine;
    events = Sim.events_processed s.ls_sim;
    final_time = Sim.now s.ls_sim;
    trace_hash = !(s.ls_hash);
    trace =
      (if t.record_traces then Some (Array.of_list (List.rev !(s.ls_trace)))
       else None);
    sim = s.ls_sim;
    stats = Sim.stats s.ls_sim;
    metrics =
      Option.map
        (fun tr ->
          (* materialize in the owning worker: the caller reads the report
             after the join, but the thunk must not re-touch live state *)
          let r = Obs.Trace.metrics_report tr in
          let rows = Stats.Report.rows r in
          Stats.Report.make
            ~name:(Printf.sprintf "link%d-metrics" s.ls_link)
            ~columns:(Stats.Report.columns r)
            ~rows:(fun () -> rows))
        s.ls_trace_obs;
  }

(* ---- ingress messages ---- *)

type batch = { b_link : int; b_leaf : int; b_count : int }
type msg = Round of { at : float; batches : batch array } | Close

(* ---- the sharded run ---- *)

let owned_links t ~shard =
  let acc = ref [] in
  for link = t.links - 1 downto 0 do
    if Flow_table.shard_of_link ~links:t.links ~shards:t.shards link = shard
    then acc := link :: !acc
  done;
  !acc

let run t =
  let w = t.workload in
  let config = Sim.snapshot_config () in
  let flows = w.flows_per_link * t.links in
  let dt = round_dt t in
  (* A dedicated consumer per mailbox is what makes bounded backpressure
     deadlock-free; with fewer workers than shards one domain drains
     mailboxes sequentially, so every round of every shard must fit. *)
  let capacity =
    if t.shards <= t.workers then t.mailbox_capacity
    else max t.mailbox_capacity (w.rounds + 2)
  in
  let mailboxes = Array.init t.shards (fun _ -> Spsc.create ~capacity) in
  let slots : link_result option array = Array.make t.links None in
  let consume shard =
    let states =
      List.map (fun link -> make_link_state t ~config ~link) (owned_links t ~shard)
    in
    let by_link = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace by_link s.ls_link s) states;
    let mailbox = mailboxes.(shard) in
    let rec loop () =
      match Spsc.pop mailbox with
      | Close -> ()
      | Round { at; batches } ->
        Array.iter
          (fun b ->
            let s = Hashtbl.find by_link b.b_link in
            sync_to s ~at;
            inject s ~leaf_slot:b.b_leaf ~size_bits:w.packet_bits
              ~count:b.b_count)
          batches;
        loop ()
    in
    (match loop () with
    | () -> ()
    | exception e ->
      (* unwedge the router before propagating: it may be blocked pushing
         into this shard's bounded mailbox *)
      let rec drain () = match Spsc.pop mailbox with Close -> () | Round _ -> drain () in
      drain ();
      raise e);
    List.iter (fun s -> slots.(s.ls_link) <- Some (finish t s ~shard)) states
  in
  let produce () =
    let root = Rng.create w.seed in
    let rngs = Array.init flows (fun f -> Rng.for_task root f) in
    let f_link = Array.init flows (fun f -> Flow_table.link_of_flow ~links:t.links f) in
    let f_leaf =
      let leaves = List.length (Hpfq.Class_tree.leaves t.spec) in
      Array.init flows (fun f -> Flow_table.leaf_of_flow ~leaves f)
    in
    let f_shard =
      Array.map (fun link -> Flow_table.shard_of_link ~links:t.links ~shards:t.shards link) f_link
    in
    let buffers = Array.make t.shards [] in
    for r = 0 to w.rounds - 1 do
      let at = float_of_int r *. dt in
      Array.fill buffers 0 t.shards [];
      for f = 0 to flows - 1 do
        let count = Rng.int rngs.(f) (w.burst_max + 1) in
        if count > 0 then
          buffers.(f_shard.(f)) <-
            { b_link = f_link.(f); b_leaf = f_leaf.(f); b_count = count }
            :: buffers.(f_shard.(f))
      done;
      for s = 0 to t.shards - 1 do
        match buffers.(s) with
        | [] -> ()
        | bs ->
          Spsc.push mailboxes.(s)
            (Round { at; batches = Array.of_list (List.rev bs) })
      done
    done;
    Array.iter (fun mb -> Spsc.push mb Close) mailboxes
  in
  let pool = Parallel.Pool.Persistent.create ~domains:t.workers () in
  let t0 = Unix.gettimeofday () in
  let round = Parallel.Pool.Persistent.submit pool ~tasks:t.shards ~f:consume in
  let outcome =
    match produce () with
    | () -> Ok ()
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (* the workers block in [pop] until their Close arrives; a mailbox
         whose consumer already exited is empty, so one more Close fits *)
      Array.iter (fun mb -> Spsc.push mb Close) mailboxes;
      Error (e, bt)
  in
  (* await even on a router failure: workers must settle before shutdown *)
  let awaited =
    match Parallel.Pool.Persistent.await round with
    | _ -> Ok ()
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Parallel.Pool.Persistent.shutdown pool;
  (match outcome with
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Ok () -> ());
  (match awaited with
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Ok () -> ());
  let per_link =
    Array.mapi
      (fun link -> function
        | Some r -> r
        | None ->
          failwith (Printf.sprintf "Device.run: link %d has no result" link))
      slots
  in
  let device_hash =
    Array.fold_left (fun h r -> fold_hash h r.trace_hash) 0L per_link
  in
  {
    per_link;
    wall_s;
    total_pkts = Array.fold_left (fun a r -> a + r.departed_pkts) 0 per_link;
    total_bits = Array.fold_left (fun a r -> a +. r.departed_bits) 0.0 per_link;
    total_drops = Array.fold_left (fun a r -> a + r.drops) 0 per_link;
    total_events = Array.fold_left (fun a r -> a + r.events) 0 per_link;
    device_hash;
  }

(* ---- sequential oracle ---- *)

let run_link_reference t ~link =
  if link < 0 || link >= t.links then
    invalid_arg (Printf.sprintf "Device.run_link_reference: link %d out of range" link);
  let w = t.workload in
  let config = Sim.snapshot_config () in
  let flows = w.flows_per_link * t.links in
  let dt = round_dt t in
  let s = make_link_state t ~config ~link in
  let leaves = List.length (Hpfq.Class_tree.leaves t.spec) in
  let root = Rng.create w.seed in
  (* only this link's flows — for_task streams are independent per index,
     so skipping the other flows changes nothing for these *)
  let mine = ref [] in
  for f = flows - 1 downto 0 do
    if Flow_table.link_of_flow ~links:t.links f = link then
      mine :=
        (Rng.for_task root f, Flow_table.leaf_of_flow ~leaves f) :: !mine
  done;
  let mine = Array.of_list !mine in
  for r = 0 to w.rounds - 1 do
    let at = float_of_int r *. dt in
    Array.iter
      (fun (rng, leaf_slot) ->
        let count = Rng.int rng (w.burst_max + 1) in
        if count > 0 then begin
          sync_to s ~at;
          inject s ~leaf_slot ~size_bits:w.packet_bits ~count
        end)
      mine
  done;
  finish t s ~shard:(Flow_table.shard_of_link ~links:t.links ~shards:t.shards link)

(* ---- merged reports ---- *)

let report result =
  Stats.Report.make ~name:"shard-device"
    ~columns:[ "link"; "shard"; "pkts"; "bits"; "drops"; "events"; "final_s"; "trace_hash" ]
    ~rows:(fun () ->
      let row r =
        [
          string_of_int r.link;
          string_of_int r.shard;
          string_of_int r.departed_pkts;
          Printf.sprintf "%.9g" r.departed_bits;
          string_of_int r.drops;
          string_of_int r.events;
          Printf.sprintf "%.9g" r.final_time;
          hash_hex r.trace_hash;
        ]
      in
      Array.to_list (Array.map row result.per_link)
      @ [
          [
            "device";
            "-";
            string_of_int result.total_pkts;
            Printf.sprintf "%.9g" result.total_bits;
            string_of_int result.total_drops;
            string_of_int result.total_events;
            "";
            hash_hex result.device_hash;
          ];
        ])

let sim_report result =
  let trace =
    Obs.Trace.of_sims
      (Array.to_list (Array.map (fun r -> r.sim) result.per_link))
  in
  Obs.Trace.sim_report ~name:"shard-device-sims" trace

(* Merge the per-link node-metrics tables into one: same columns plus a
   leading "link" column, and a device-total row summing the additive
   counters (vtime watermarks don't add across links; left blank). *)
let metrics_report result =
  let reports =
    Array.to_list
      (Array.map (fun r -> Option.map (fun m -> (r.link, m)) r.metrics) result.per_link)
  in
  if List.exists Option.is_none reports then None
  else
    let reports = List.filter_map Fun.id reports in
    let columns =
      match reports with
      | (_, m) :: _ -> Stats.Report.columns m
      | [] -> []
    in
    Some
      (Stats.Report.make ~name:"shard-device-metrics"
         ~columns:("link" :: columns)
         ~rows:(fun () ->
           let rows =
             List.concat_map
               (fun (link, m) ->
                 List.map
                   (fun row -> string_of_int link :: row)
                   (Stats.Report.rows m))
               reports
           in
           (* additive columns: arrivals arrived_bits selects served_pkts
              served_bits drops; max_backlog and busy_periods also sum
              meaningfully as device-level totals except max_backlog,
              which takes the max *)
           let n_cols = List.length columns in
           let sums = Array.make n_cols 0.0 in
           let maxes = Array.make n_cols 0.0 in
           List.iter
             (fun (_, m) ->
               List.iter
                 (fun row ->
                   List.iteri
                     (fun i cell ->
                       match float_of_string_opt cell with
                       | Some v ->
                         sums.(i) <- sums.(i) +. v;
                         if v > maxes.(i) then maxes.(i) <- v
                       | None -> ())
                     row)
                 (Stats.Report.rows m))
             reports;
           let total =
             "device"
             :: List.mapi
                  (fun i col ->
                    match col with
                    | "node" | "vtime_min" | "vtime_max" -> ""
                    | "max_backlog" -> Printf.sprintf "%.9g" maxes.(i)
                    | _ -> Printf.sprintf "%.9g" sums.(i))
                  columns
           in
           rows @ [ total ]))
