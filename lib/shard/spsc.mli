(** Bounded single-producer / single-consumer mailbox.

    The ingress router owns the producer side of one of these per shard;
    the shard's worker domain owns the consumer side. Exactly one domain
    may call the push functions and exactly one (other) domain the pop
    functions — the queue is wait-free between them in the fast path and
    falls back to a mutex/condvar sleep under sustained fullness or
    emptiness, which is what makes it usable on hosts with fewer cores
    than domains (a pure spin-wait would burn the producer's timeslice
    exactly when the consumer needs it).

    Bounded capacity is the backpressure contract: a producer that runs
    ahead of a slow shard blocks in {!push} instead of growing an
    unbounded backlog. *)

type 'a t

val create : capacity:int -> 'a t
(** A queue holding at most [capacity] elements (rounded up to a power of
    two — see {!capacity} for the effective bound).
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
(** The effective bound after rounding. *)

val length : 'a t -> int
(** Elements currently queued (racy by nature; exact when either side is
    quiescent). *)

val try_push : 'a t -> 'a -> bool
(** Producer only. [false] if the queue is full. *)

val push : 'a t -> 'a -> unit
(** Producer only. Blocks while the queue is full. *)

val try_pop : 'a t -> 'a option
(** Consumer only. [None] if the queue is empty. *)

val pop : 'a t -> 'a
(** Consumer only. Blocks while the queue is empty. *)
