(** Subtree-sharded H-WF²Q+: one hierarchy, its root-child subtrees
    partitioned across shards, the root's WF²Q+ run in epochs.

    {!Hpfq.Hier_flat} keeps every interior node's eq. 27–29 machinery on
    the node's post-dated reference clock [T_n] — only the root reads the
    simulator — so a root-child subtree's state is a pure function of the
    operation sequence applied to it, and the preorder numbering makes each
    subtree a contiguous node-id range. This engine exploits both facts:
    shards own disjoint index regions of the flat arenas (private arenas in
    the data-race-free sense of the OCaml memory model), worker Domains
    from a {!Parallel.Pool.Persistent} integrate staged arrivals through
    the shard-local part of ARRIVE / RESTART-NODE, and per-shard {!Spsc}
    mailboxes carry the staged packets.

    [epoch] selects the regime:

    - [epoch = 1] (default): fully synchronous — bit-identical to
      {!Hpfq.Hier_flat} in departures, stamps, drops and clocks at any
      shard/worker count (qcheck lockstep differential in the test suite).
    - [epoch = k > 1]: arrivals landing while the link transmits are
      staged; at latest every [k-1] departures — and always before the
      link would go idle — a sync integrates them in parallel and applies
      each shard's eligible-head proposal to the root in canonical slot
      order. Per-session service lag vs the sequential schedule is bounded
      by [(k-1) * l_max / r] ({!Hpfq.Theory.epoch_lag_bound}); with the
      shard partition fixed, results are bit-identical at any worker
      count. *)

type t

val create :
  sim:Engine.Simulator.t ->
  spec:Hpfq.Class_tree.t ->
  ?root_clock:[ `Real_time | `Reference_time ] ->
  ?on_depart:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?burst_max:int ->
  ?shards:int ->
  ?workers:int ->
  ?epoch:int ->
  ?mailbox_capacity:int ->
  unit ->
  t
(** [root_clock], [on_depart], [on_drop] and [burst_max] as in
    {!Hpfq.Hier_flat.create}. [shards] (default: one per root child) is
    clamped to the number of root children; [workers] (default [0]) worker
    Domains integrate flush rounds — [0] runs them inline on the calling
    domain, bit-identical to any positive count. [epoch] (default [1]) is
    the root sync period in departures; [mailbox_capacity] (default 256)
    bounds each shard's staging mailbox — a full mailbox forces an early
    sync. Worker Domains are spawned only when [epoch > 1] and
    [workers > 0]; release them with {!shutdown}.
    @raise Invalid_argument on an invalid [spec], a leaf root,
    [burst_max < 1], [shards < 1], [workers < 0], [epoch < 1] or
    [mailbox_capacity < 1]. *)

val shutdown : t -> unit
(** Join the worker Domains (idempotent; a no-op for pool-less engines).
    Pools left open are closed by {!Parallel.Pool.Persistent}'s [at_exit]
    hook, but long-lived processes building many engines should shut each
    one down. *)

val shards : t -> int
(** Effective shard count after clamping. *)

val epoch : t -> int
val workers : t -> int

val sync_rounds : t -> int
(** Number of epoch syncs that integrated at least one staged arrival
    (always [0] at [epoch = 1]). *)

val node_shard : t -> int -> int
(** Owning shard of a node id; [-1] for the root (coordinator-owned). *)

(** {2 The Hier_flat surface}

    Same contracts as the function of the same name in {!Hpfq.Hier_flat};
    at [epoch > 1], lifecycle operations and state accessors first run an
    epoch boundary so they observe every staged arrival. *)

val set_burst_max : t -> int -> unit
val burst_max : t -> int
val leaf_id : t -> string -> Hpfq.Hier.leaf
val leaf_name : t -> Hpfq.Hier.leaf -> string
val leaf_ids : t -> (string * Hpfq.Hier.leaf) list

val pool : t -> Net.Packet_pool.t
(** The engine's packet arena. Alloc/free are coordinator-only; shard
    workers only read fields of live handles during a sync round. *)

val inject :
  ?mark:int -> t -> leaf:Hpfq.Hier.leaf -> size_bits:float -> Net.Packet_pool.handle

val inject_many :
  ?mark:int -> t -> leaf:Hpfq.Hier.leaf -> size_bits:float -> count:int -> unit

val close_leaf :
  t -> leaf:Hpfq.Hier.leaf -> policy:Sched.Sched_intf.close_policy -> unit

val reopen_leaf : ?rate:float -> t -> leaf:Hpfq.Hier.leaf -> unit
val leaf_state : t -> leaf:Hpfq.Hier.leaf -> [ `Open | `Closing | `Closed ]
val queue_bits : t -> leaf:Hpfq.Hier.leaf -> float
val departed_bits : t -> node:string -> float
val ref_time : t -> node:string -> float
val node_virtual_time : t -> node:string -> float
val link_busy : t -> bool
val drops : t -> int
val add_depart_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
val add_drop_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit

val add_transmit_start_hook :
  t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit

val add_depart_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit
(** Allocation-free hook variants: the callback sees the pool handle,
    valid for the duration of the call only. *)

val add_drop_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val add_transmit_start_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val root_name : t -> string
val node_name : t -> int -> string
val node_count : t -> int
val leaf_path : t -> leaf:Hpfq.Hier.leaf -> int array

val iter_interior :
  t -> (id:int -> name:string -> level:int -> children:int array -> unit) -> unit

val set_node_observer : t -> node:string -> Sched.Sched_intf.observer option -> unit
(** @raise Invalid_argument when installing an observer at [epoch > 1]:
    backlog/requeue events would fire on worker domains. *)

val set_node_observer_id : t -> node:int -> Sched.Sched_intf.observer option -> unit

val register : unit -> unit
(** Install this engine as {!Hpfq.Hier_engine}'s [`Subtree] builder.
    Explicit registration (rather than a module-initialisation side
    effect) keeps the wiring robust under native linking, which may drop
    unreferenced modules; executables that want
    [--hier-engine subtree] call this once at startup. *)

val log_src : Logs.src
