(** Arena-slot lifecycle for dynamic sessions.

    Mirrors [Engine.Event_pool]: slots are recycled through a freelist and
    every free bumps the slot's generation, so a {!Session_handle.t} held
    past [close_session] raises {!Stale_handle} on {!resolve} instead of
    silently addressing the slot's next tenant. The pool owns only
    lifecycle state — free / live / draining — while the owning discipline
    keeps its per-slot scheduling arrays sized to {!capacity} (dense slots:
    [alloc] returns either a recycled slot or [slot_count], never skips).

    [Draining] is the half-closed state behind the [`Drain] close policy: a
    draining session is still scheduled (it is emptying its queue) but its
    slot is already committed to die — the discipline calls {!free} when
    the session finally goes idle. *)

exception Stale_handle of string

type t

val create : ?name:string -> ?recycle:bool -> ?capacity:int -> unit -> t
(** [name] prefixes error messages. [recycle:false] disables slot reuse
    (freed slots still invalidate their handles, but [alloc] always
    extends the arena) — for disciplines whose side structures cannot be
    re-initialised per slot, e.g. the exact-GPS fluid clock. *)

val alloc : t -> int
(** Claim a slot (recycled, or a fresh one at [slot_count]); marks it live. *)

val handle : t -> int -> Session_handle.t
(** The current-generation handle for a live slot. *)

val resolve : t -> Session_handle.t -> int
(** Slot of a live (or draining) handle.
    @raise Stale_handle if the session was closed or the slot recycled. *)

val free : t -> int -> unit
(** Release a slot: bumps its generation and (if recycling) freelists it.
    @raise Invalid_argument if the slot is already free. *)

val mark_draining : t -> int -> unit
val is_draining : t -> int -> bool

val is_live : t -> int -> bool
(** Live or draining. *)

val live_count : t -> int
val slot_count : t -> int
(** High-water slot count — the dense prefix the discipline's arrays must
    cover. *)

val capacity : t -> int
val iter_live : t -> (int -> unit) -> unit
