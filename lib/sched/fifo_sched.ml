type session = { order : int Queue.t; mutable backlogged : bool }

let make ~rate:_ =
  let sessions : session Vec.t = Vec.create () in
  let pool = Session_pool.create ~name:"Fifo_sched" () in
  let ready = Prioq.Indexed_heap.create 16 in
  let backlogged_count = ref 0 in
  let arrival_counter = ref 0 in
  let observer : Sched_intf.observer option ref = ref None in
  let open_session ~rate:_ =
    let slot = Session_pool.alloc pool in
    let fresh = { order = Queue.create (); backlogged = false } in
    if slot = Vec.length sessions then ignore (Vec.push sessions fresh)
    else Vec.set sessions slot fresh;
    Session_pool.handle pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve pool h in
    let s = Vec.get sessions slot in
    if s.backlogged then begin
      match policy with
      | `Drain -> Session_pool.mark_draining pool slot
      | `Drop ->
        Prioq.Indexed_heap.remove ready slot;
        Queue.clear s.order;
        s.backlogged <- false;
        decr backlogged_count;
        Session_pool.free pool slot
    end
    else Session_pool.free pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  let arrive ~now ~session ~size_bits =
    incr arrival_counter;
    Queue.push !arrival_counter (Vec.get sessions session).order;
    match !observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_arrive ~now ~vtime:(float_of_int !arrival_counter) ~session
        ~size_bits
  in
  let head_order session =
    match Queue.peek_opt (Vec.get sessions session).order with
    | Some n -> float_of_int n
    | None -> invalid_arg "Fifo_sched: session has no queued packet"
  in
  let backlog ~now ~session ~head_bits =
    (Vec.get sessions session).backlogged <- true;
    incr backlogged_count;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_order session);
    match !observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_backlog ~now ~vtime:(float_of_int !arrival_counter) ~session
        ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    ignore (Queue.pop (Vec.get sessions session).order);
    Prioq.Indexed_heap.remove ready session;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_order session);
    match !observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_requeue ~now ~vtime:(float_of_int !arrival_counter) ~session
        ~head_bits
  in
  let set_idle ~now ~session =
    let s = Vec.get sessions session in
    ignore (Queue.pop s.order);
    Prioq.Indexed_heap.remove ready session;
    s.backlogged <- false;
    decr backlogged_count;
    if Session_pool.is_draining pool session then Session_pool.free pool session;
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:(float_of_int !arrival_counter) ~session
  in
  let select ~now =
    match Prioq.Indexed_heap.min_key ready with
    | None -> None
    | Some session ->
      (match !observer with
      | None -> ()
      | Some o ->
        o.Sched_intf.on_select ~now ~vtime:(float_of_int !arrival_counter) ~session);
      Some session
  in
  {
    Sched_intf.name = "FIFO";
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve pool h);
    live_sessions = (fun () -> Session_pool.live_count pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now:_ -> float_of_int !arrival_counter);
    backlogged_count = (fun () -> !backlogged_count);
    set_observer = (fun o -> observer := o);
  }

let factory = { Sched_intf.kind = "FIFO"; make }
