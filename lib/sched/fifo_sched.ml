type session = { order : int Queue.t; mutable backlogged : bool }

let make ~rate:_ =
  let sessions : session Vec.t = Vec.create () in
  let ready = Prioq.Indexed_heap.create 16 in
  let backlogged_count = ref 0 in
  let arrival_counter = ref 0 in
  let add_session ~rate:_ =
    Vec.push sessions { order = Queue.create (); backlogged = false }
  in
  let arrive ~now:_ ~session ~size_bits:_ =
    incr arrival_counter;
    Queue.push !arrival_counter (Vec.get sessions session).order
  in
  let head_order session =
    match Queue.peek_opt (Vec.get sessions session).order with
    | Some n -> float_of_int n
    | None -> invalid_arg "Fifo_sched: session has no queued packet"
  in
  let backlog ~now:_ ~session ~head_bits:_ =
    (Vec.get sessions session).backlogged <- true;
    incr backlogged_count;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_order session)
  in
  let requeue ~now:_ ~session ~head_bits:_ =
    ignore (Queue.pop (Vec.get sessions session).order);
    Prioq.Indexed_heap.remove ready session;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_order session)
  in
  let set_idle ~now:_ ~session =
    let s = Vec.get sessions session in
    ignore (Queue.pop s.order);
    Prioq.Indexed_heap.remove ready session;
    s.backlogged <- false;
    decr backlogged_count
  in
  let select ~now:_ = Prioq.Indexed_heap.min_key ready in
  {
    Sched_intf.name = "FIFO";
    add_session;
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now:_ -> float_of_int !arrival_counter);
    backlogged_count = (fun () -> !backlogged_count);
  }

let factory = { Sched_intf.kind = "FIFO"; make }
