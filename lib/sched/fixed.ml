(* Fixed-point virtual time: vtime is carried as an integer count of
   [ticks], 2^shift ticks per virtual-time second. All per-packet stamp
   arithmetic is then exact integer addition — the quantization happens
   ONCE per session, when its rate is converted to an integer ticks-per-bit
   increment, not once per packet. A float engine summing L/r per packet
   accumulates rounding drift that grows with the horizon; the fixed-point
   engine schedules exactly for its (quantized) rates forever, which is
   what makes week-long soaks reproducible (see DESIGN.md §13 and the
   drift soak in bench/experiments). *)

let default_shift = 20

let one ~shift = 1 lsl shift

(* ticks per bit for a session of [rate] bits per vtime-second; rounding
   here is the engine's single quantization point. The effective rate is
   2^shift / ipb, within a relative 2^-shift of the request for rates up
   to ~2^(shift-1). Rates above 2^shift bits/s would floor to 0 ticks/bit;
   clamp to 1 and let the caller pick a bigger shift (create-time check in
   Wf2q_plus_fixed). *)
let ticks_per_bit ~shift ~rate =
  if rate <= 0.0 then invalid_arg "Fixed.ticks_per_bit: rate must be positive";
  max 1 (int_of_float (Float.round (float_of_int (one ~shift) /. rate)))

let of_float ~shift v = int_of_float (Float.round (v *. float_of_int (one ~shift)))
let to_float ~shift ticks = float_of_int ticks /. float_of_int (one ~shift)

(* Overflow horizon: OCaml ints carry 62 value bits; with the default
   shift of 20 the representable virtual-time span is 2^42 vtime-seconds
   (~1.4e5 years of busy service at rate parity), and a single session's
   finish stamp overflows only after serving ~2^42 * rate bits. *)
let horizon_seconds ~shift = to_float ~shift max_int
