(** Shared implementation of the two GPS-tracking disciplines.

    WFQ and WF²Q differ only in the selection rule applied to the exact GPS
    virtual time ({!Gps_clock}):

    - {b SFF} (WFQ, paper §3.1): serve the backlogged session whose head
      packet has the smallest virtual finish time;
    - {b SEFF} (WF²Q, paper §3.3): restrict the choice to {e eligible}
      sessions — head packets whose virtual start time is [≤ V_GPS(now)],
      i.e. packets that have already started service in the fluid system —
      and among them pick the smallest virtual finish.

    Per-packet stamps are computed at arrival time from eqs. 6–7 (the
    original WFQ definition); for FIFO session queues this coincides with
    the per-session stamping of eqs. 28–29. *)

type discipline = Sff | Seff

val make : discipline:discipline -> name:string -> rate:float -> Sched_intf.t
(** @deprecated Prefer the unified constructor surface in
    [Hpfq.Schedulers]; this per-discipline entry point remains as its
    plumbing. *)

val wfq : Sched_intf.factory
val wf2q : Sched_intf.factory
