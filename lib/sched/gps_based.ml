type discipline = Sff | Seff

type session = {
  rate : float;
  stamps : Stamp_queue.t; (* (S, F) per queued packet, FIFO, unboxed *)
  mutable backlogged : bool;
}

type state = {
  discipline : discipline;
  clock : Gps_clock.t;
  sessions : session Vec.t;
  pool : Session_pool.t;
  (* SFF: [ready] holds every backlogged session keyed by head virtual
     finish. SEFF: [ready] holds eligible sessions keyed by finish and
     [waiting] holds not-yet-eligible ones keyed by head virtual start. *)
  ready : Prioq.Indexed_heap4.t;
  waiting : Prioq.Indexed_heap4.t;
  mutable backlogged_count : int;
  mutable observer : Sched_intf.observer option;
}

let head_stamps t session =
  let s = Vec.get t.sessions session in
  if Stamp_queue.is_empty s.stamps then
    invalid_arg "Gps_based: session has no stamped packet";
  s.stamps

let head_finish t session = Stamp_queue.peek_finish (head_stamps t session)

(* Eligibility comparisons tolerate float noise: a start time within
   {!Float_cmp.epsilon} relative of V counts as eligible. *)
let le_with_slack = Float_cmp.le_with_slack

let enqueue_session t ~now session =
  let stamps = head_stamps t session in
  let start = Stamp_queue.peek_start stamps
  and finish = Stamp_queue.peek_finish stamps in
  match t.discipline with
  | Sff -> Prioq.Indexed_heap4.add t.ready ~key:session ~prio:finish
  | Seff ->
    let v = Gps_clock.virtual_time t.clock ~now in
    if le_with_slack start v then
      Prioq.Indexed_heap4.add t.ready ~key:session ~prio:finish
    else Prioq.Indexed_heap4.add t.waiting ~key:session ~prio:start

(* Move every waiting session whose head has started GPS service into the
   eligible heap. *)
let promote_eligible t ~v =
  let continue = ref true in
  while !continue do
    match Prioq.Indexed_heap4.min_binding t.waiting with
    | Some (session, start) when le_with_slack start v ->
      ignore (Prioq.Indexed_heap4.pop_min t.waiting);
      Prioq.Indexed_heap4.add t.ready ~key:session ~prio:(head_finish t session)
    | Some _ | None -> continue := false
  done

let make ~discipline ~name ~rate =
  let t =
    {
      discipline;
      clock = Gps_clock.create ~rate;
      sessions = Vec.create ();
      (* The fluid clock integrates per-slot state over the whole busy
         period; a recycled slot cannot be re-initialised mid-flight, so
         closed slots retire instead of returning to a freelist. *)
      pool = Session_pool.create ~name:name ~recycle:false ();
      ready = Prioq.Indexed_heap4.create 16;
      waiting = Prioq.Indexed_heap4.create 16;
      backlogged_count = 0;
      observer = None;
    }
  in
  let open_session ~rate =
    if rate <= 0.0 then invalid_arg (name ^ ".open_session: bad rate");
    let slot = Session_pool.alloc t.pool in
    let idx = Gps_clock.add_session t.clock ~rate in
    let idx' =
      Vec.push t.sessions
        { rate; stamps = Stamp_queue.create (); backlogged = false }
    in
    (* recycle:false means slots are dense: pool, clock and Vec agree. *)
    assert (idx = idx' && idx = slot);
    Session_pool.handle t.pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve t.pool h in
    let s = Vec.get t.sessions slot in
    if s.backlogged then begin
      match policy with
      | `Drain -> Session_pool.mark_draining t.pool slot
      | `Drop ->
        (* Dropping the queue would leave the fluid GPS system still owing
           service for those bits, skewing V for every other session.
           Deterministic reject: callers must drain GPS-exact policies. *)
        invalid_arg
          (name ^ ".close_session: `Drop of a backlogged session is unsupported")
    end
    else Session_pool.free t.pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  let arrive ~now ~session ~size_bits =
    let start, finish = Gps_clock.on_arrival t.clock ~now ~session ~size_bits in
    Stamp_queue.push (Vec.get t.sessions session).stamps ~start ~finish;
    match t.observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_arrive ~now
        ~vtime:(Gps_clock.virtual_time t.clock ~now)
        ~session ~size_bits
  in
  let backlog ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    if s.backlogged then invalid_arg (name ^ ": backlog of backlogged session");
    s.backlogged <- true;
    t.backlogged_count <- t.backlogged_count + 1;
    enqueue_session t ~now session;
    match t.observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_backlog ~now
        ~vtime:(Gps_clock.virtual_time t.clock ~now)
        ~session ~head_bits
  in
  let drop_served_stamp session =
    Stamp_queue.drop (Vec.get t.sessions session).stamps
  in
  let remove_from_heaps session =
    Prioq.Indexed_heap4.remove t.ready session;
    Prioq.Indexed_heap4.remove t.waiting session
  in
  let requeue ~now ~session ~head_bits =
    drop_served_stamp session;
    remove_from_heaps session;
    enqueue_session t ~now session;
    match t.observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_requeue ~now
        ~vtime:(Gps_clock.virtual_time t.clock ~now)
        ~session ~head_bits
  in
  let set_idle ~now ~session =
    drop_served_stamp session;
    remove_from_heaps session;
    let s = Vec.get t.sessions session in
    if not s.backlogged then invalid_arg (name ^ ": set_idle of idle session");
    s.backlogged <- false;
    t.backlogged_count <- t.backlogged_count - 1;
    if Session_pool.is_draining t.pool session then Session_pool.free t.pool session;
    match t.observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_idle ~now ~vtime:(Gps_clock.virtual_time t.clock ~now) ~session
  in
  let select ~now =
    (match t.discipline with
    | Sff -> ()
    | Seff ->
      let v = Gps_clock.virtual_time t.clock ~now in
      promote_eligible t ~v;
      (* Work-conservation guard: by Property 1 at least one head packet has
         started GPS service whenever the packet system is backlogged, but
         float rounding can leave the eligible set momentarily empty. Fall
         back to the earliest start. *)
      if Prioq.Indexed_heap4.is_empty t.ready then begin
        match Prioq.Indexed_heap4.pop_min t.waiting with
        | Some (session, _) ->
          Prioq.Indexed_heap4.add t.ready ~key:session ~prio:(head_finish t session)
        | None -> ()
      end);
    match Prioq.Indexed_heap4.min_key t.ready with
    | None -> None
    | Some session ->
      (match t.observer with
      | None -> ()
      | Some o ->
        o.Sched_intf.on_select ~now
          ~vtime:(Gps_clock.virtual_time t.clock ~now)
          ~session);
      Some session
  in
  let virtual_time ~now = Gps_clock.virtual_time t.clock ~now in
  {
    Sched_intf.name;
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve t.pool h);
    live_sessions = (fun () -> Session_pool.live_count t.pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time;
    backlogged_count = (fun () -> t.backlogged_count);
    set_observer = (fun o -> t.observer <- o);
  }

let wfq =
  { Sched_intf.kind = "WFQ"; make = (fun ~rate -> make ~discipline:Sff ~name:"WFQ" ~rate) }

let wf2q =
  { Sched_intf.kind = "WF2Q"; make = (fun ~rate -> make ~discipline:Seff ~name:"WF2Q" ~rate) }
