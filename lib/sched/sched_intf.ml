(** The one-level Packet-Fair-Queueing building-block interface.

    Every scheduling discipline in this repository — the baselines (WFQ,
    WF²Q, SCFQ, SFQ, Virtual Clock, DRR, WRR, FIFO) and the paper's WF²Q+ —
    is exposed as a value of type {!t}: a record of closures over hidden
    mutable state. This uniform shape is what lets {!Hpfq.Hier} assemble an
    H-PFQ server out of arbitrary one-level servers, one per interior node,
    exactly as §4 of the paper prescribes ("one-level PFQ servers as basic
    building blocks").

    {2 Time domain}

    Every operation takes [now], the {e server time} of the node owning the
    policy. For a standalone server this is real time; for a server node in
    a hierarchy it is the node's reference time
    [T_n(t) = W_n(0,t)/r_n] (paper §4.1). The policy never looks at a wall
    clock of its own.

    {2 Driving protocol}

    The caller owns the packet queues; the policy only sees per-session head
    packets. For each session the caller must issue, in order:

    - [arrive] for {e every} packet arrival (lets GPS-exact policies track
      the fluid system; most policies also compute per-packet stamps here);
    - [backlog] when a session goes idle→backlogged (its first queued packet
      becomes the head of its logical queue);
    - after the server finishes serving a session's head packet: [requeue]
      if the session has another packet (with the new head), or [set_idle]
      if it emptied;
    - [select] whenever the server needs the next session to serve; the
      policy updates its virtual time and returns the chosen session, whose
      registered head packet the caller then serves.

    [backlog]/[requeue] correspond to the two branches of eq. 28: a packet
    reaching the head of a previously-empty queue stamps
    [S = max(F, V(now))], while one reaching the head of a continuously
    backlogged queue stamps [S = F].

    {2 Observability}

    Every discipline carries one optional {!observer}: a set of callbacks
    fired after each driving-protocol operation, stamped with the operation
    time and the policy's virtual time at that instant. Installing an
    observer is the uniform instrumentation point of the building-block
    contract — {!Hpfq.Hier} installs one per interior node to trace a whole
    hierarchy, and [lib/obs] records the callbacks into an event stream.

    The disabled state is [None], and disciplines must keep that state
    branch-cheap and allocation-free: the hot path does a single
    [match observer with None -> ()] per operation and computes the
    virtual-time stamp only on the [Some] branch. *)

type observer = {
  on_arrive : now:float -> vtime:float -> session:int -> size_bits:float -> unit;
  (** After [arrive]: a packet joined [session]'s queue. *)
  on_backlog : now:float -> vtime:float -> session:int -> head_bits:float -> unit;
  (** After [backlog]: the session went idle→backlogged. *)
  on_requeue : now:float -> vtime:float -> session:int -> head_bits:float -> unit;
  (** After [requeue]: a new head was stamped on a still-backlogged session. *)
  on_idle : now:float -> vtime:float -> session:int -> unit;
  (** After [set_idle]: the session drained. *)
  on_select : now:float -> vtime:float -> session:int -> unit;
  (** After a successful [select]; [vtime] is the post-update virtual time
      (for WF²Q+, the post-dated V of RESTART-NODE lines 12-13). *)
}

let null_observer =
  {
    on_arrive = (fun ~now:_ ~vtime:_ ~session:_ ~size_bits:_ -> ());
    on_backlog = (fun ~now:_ ~vtime:_ ~session:_ ~head_bits:_ -> ());
    on_requeue = (fun ~now:_ ~vtime:_ ~session:_ ~head_bits:_ -> ());
    on_idle = (fun ~now:_ ~vtime:_ ~session:_ -> ());
    on_select = (fun ~now:_ ~vtime:_ ~session:_ -> ());
  }

type close_policy = [ `Drain | `Drop ]
(** What [close_session] does to a still-backlogged session:
    - [`Drain]: the session stops accepting new work but keeps its place in
      the schedule until the caller reports it idle ([set_idle]), at which
      point its slot is freed — guaranteed service is honoured to the last
      queued packet.
    - [`Drop]: the session is removed from the eligible/waiting structures
      immediately (the caller discards its queue). Closing an idle session
      is identical under both policies.

    Either way the close is {e deterministic}: a policy that cannot support
    one of the variants must raise [Invalid_argument], never corrupt its
    heaps. *)

type t = {
  name : string;
  (** Discipline name, e.g. ["WF2Q+"]. Used in reports. *)
  add_session : rate:float -> int;
  (** Register a session with guaranteed rate [r_i] (bits per second of
      server time); returns its session index.
      @deprecated This is the static pre-lifecycle entry point, kept as an
      alias for [open_session] + [session_of_handle] so existing drivers
      keep working; new code should call {!open_session} and hold the
      handle. *)
  open_session : rate:float -> Session_handle.t;
  (** Open a session with guaranteed rate [r_i], any time — before or
      during service. Returns a generation-tagged handle; the underlying
      slot may recycle a closed session's storage, and a handle kept past
      [close_session] raises {!Session_pool.Stale_handle} when resolved. *)
  close_session : now:float -> policy:close_policy -> Session_handle.t -> unit;
  (** Close a session (see {!close_policy} for backlogged semantics).
      @raise Session_pool.Stale_handle if the handle is stale. *)
  session_of_handle : Session_handle.t -> int;
  (** Resolve a handle to the session index used by the driving protocol.
      @raise Session_pool.Stale_handle if the handle is stale. *)
  live_sessions : unit -> int;
  (** Number of open (live or draining) sessions. *)
  arrive : now:float -> session:int -> size_bits:float -> unit;
  (** Called for every packet arrival, in FIFO order per session. *)
  backlog : now:float -> session:int -> head_bits:float -> unit;
  (** Session transitioned idle→backlogged; [head_bits] is its new head. *)
  requeue : now:float -> session:int -> head_bits:float -> unit;
  (** The previously selected head was served; the session remains
      backlogged with a new head packet of [head_bits]. *)
  set_idle : now:float -> session:int -> unit;
  (** The previously selected head was served and the session emptied. *)
  select : now:float -> int option;
  (** Choose the session whose head to serve next, or [None] if no session
      is backlogged. Advances the policy's virtual time. *)
  virtual_time : now:float -> float;
  (** Introspection for tests: the policy's current virtual time (policies
      without one report a related quantity; see each module's doc). *)
  backlogged_count : unit -> int;
  (** Number of sessions currently registered as backlogged. *)
  set_observer : observer option -> unit;
  (** Install ([Some]) or remove ([None]) the policy's observer. [None] is
      the default; installing must not wrap or replace the operation
      closures (so removing an observer restores the exact untraced hot
      path). *)
}

(** Constructor type shared by all disciplines: a standalone factory taking
    the server rate in bits/second.
    @deprecated Prefer the unified labelled constructor surface in
    [Hpfq.Schedulers] ([~rate], [?observer], [?initial_sessions]); the
    factory records remain the plumbing underneath it. *)
type factory = { kind : string; make : rate:float -> t }
