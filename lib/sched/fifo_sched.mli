(** Global FIFO across sessions: serve packets strictly in arrival order,
    ignoring rates. The no-isolation baseline for fairness benches. *)

val make : rate:float -> Sched_intf.t
(** @deprecated Prefer the unified constructor surface in
    [Hpfq.Schedulers]; this per-discipline entry point remains as its
    plumbing. *)

val factory : Sched_intf.factory
