(** Global FIFO across sessions: serve packets strictly in arrival order,
    ignoring rates. The no-isolation baseline for fairness benches. *)

val make : rate:float -> Sched_intf.t
val factory : Sched_intf.factory
