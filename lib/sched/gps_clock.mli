(** Exact GPS virtual-time tracker (paper eqs. 4–5).

    Simulates the fluid Generalized Processor Sharing system that shadows a
    packet server, fed with the same packet arrivals, and answers
    [V_GPS(now)] queries. This is the expensive-but-exact virtual time that
    WFQ and WF²Q are defined against; its worst-case per-operation cost is
    O(N) (the paper's motivation for replacing it with eq. 27 in WF²Q+).

    The fluid state advances lazily: every query first replays fluid
    departures up to [now]. Within one server busy period
    [dV/dt = r / Σ_{i ∈ B(t)} r_i], i.e. eq. 5 with shares expressed as
    absolute rates. When the fluid system drains completely the busy period
    ends: [V] resets to 0 and the epoch counter increments, so stamps from
    different busy periods are never compared (Parekh–Gallager define V per
    busy period). *)

type t

val create : rate:float -> t
(** [rate] is the server rate in bits/second (of server time). *)

val add_session : t -> rate:float -> int
(** Register a session with guaranteed rate [r_i]; returns its index. *)

val on_arrival : t -> now:float -> session:int -> size_bits:float -> float * float
(** Feed a packet into the fluid system; returns its virtual
    [(start, finish)] stamps per eqs. 6–7. Arrival times per session must be
    non-decreasing, and [now] non-decreasing overall. *)

val virtual_time : t -> now:float -> float
(** [V_GPS(now)]. *)

val epoch : t -> now:float -> int
(** Busy-period counter at [now]; 0 before the first arrival. Stamps are
    comparable only within one epoch. *)

val gps_backlogged : t -> now:float -> session:int -> bool
(** Does the session still have fluid backlog at [now]? *)

val busy : t -> now:float -> bool
