(* Slot lifecycle manager for dynamic sessions, mirroring
   Engine.Event_pool: a freelist of recyclable slots plus a per-slot
   generation bumped on every free, so stale handles are detected instead
   of silently addressing the slot's next tenant. The pool owns only the
   lifecycle state (free / live / draining); the discipline owns the
   per-slot scheduling arrays and grows them in step with [capacity]. *)

exception Stale_handle of string

type state = Free | Live | Draining

type t = {
  name : string;
  recycle : bool;
  mutable gens : int array;
  mutable state : state array;
  mutable next_free : int array; (* freelist link, -1 ends the list *)
  mutable free_head : int;
  mutable n_slots : int; (* high-water slot count (dense prefix) *)
  mutable live : int; (* live + draining *)
}

let create ?(name = "sessions") ?(recycle = true) ?(capacity = 16) () =
  let cap = max 2 capacity in
  {
    name;
    recycle;
    gens = Array.make cap 0;
    state = Array.make cap Free;
    next_free = Array.make cap (-1);
    free_head = -1;
    n_slots = 0;
    live = 0;
  }

let capacity t = Array.length t.gens
let live_count t = t.live
let slot_count t = t.n_slots

let grow t =
  let cap = Array.length t.gens in
  let cap' = 2 * cap in
  let grow_i a = let b = Array.make cap' 0 in Array.blit a 0 b 0 cap; b in
  t.gens <- grow_i t.gens;
  let state = Array.make cap' Free in
  Array.blit t.state 0 state 0 cap;
  t.state <- state;
  let next_free = Array.make cap' (-1) in
  Array.blit t.next_free 0 next_free 0 cap;
  t.next_free <- next_free

let alloc t =
  let slot =
    if t.recycle && t.free_head >= 0 then begin
      let slot = t.free_head in
      t.free_head <- t.next_free.(slot);
      slot
    end
    else begin
      if t.n_slots = Array.length t.gens then grow t;
      let slot = t.n_slots in
      t.n_slots <- slot + 1;
      slot
    end
  in
  t.state.(slot) <- Live;
  t.live <- t.live + 1;
  slot

let handle t slot = Session_handle.pack ~slot ~gen:t.gens.(slot)

let stale t h reason =
  raise
    (Stale_handle
       (Printf.sprintf "%s: stale session handle %s (%s)" t.name
          (Format.asprintf "%a" Session_handle.pp h)
          reason))

let resolve t h =
  let slot = Session_handle.slot h in
  if slot >= t.n_slots then stale t h "slot never allocated"
  else if t.state.(slot) = Free then stale t h "session closed"
  else if t.gens.(slot) <> Session_handle.generation h then
    stale t h "slot recycled by a newer session"
  else slot

let is_live t slot = slot >= 0 && slot < t.n_slots && t.state.(slot) <> Free
let is_draining t slot = slot >= 0 && slot < t.n_slots && t.state.(slot) = Draining

let mark_draining t slot =
  if not (is_live t slot) then invalid_arg (t.name ^ ": mark_draining of free slot");
  t.state.(slot) <- Draining

let free t slot =
  if not (is_live t slot) then invalid_arg (t.name ^ ": free of free slot");
  t.state.(slot) <- Free;
  t.gens.(slot) <- (t.gens.(slot) + 1) land Session_handle.gen_mask;
  t.live <- t.live - 1;
  if t.recycle then begin
    t.next_free.(slot) <- t.free_head;
    t.free_head <- slot
  end

let iter_live t f =
  for slot = 0 to t.n_slots - 1 do
    if t.state.(slot) <> Free then f slot
  done
