type session = {
  rate : float;
  mutable last_finish : float; (* virtual finish of the session's last packet *)
  mutable stamp_epoch : int;   (* epoch in which last_finish was computed *)
  mutable in_fluid : bool;     (* currently backlogged in the GPS system *)
}

type t = {
  rate : float;
  sessions : session Vec.t;
  departures : Prioq.Indexed_heap.t; (* fluid-backlogged sessions keyed by last_finish *)
  mutable active_rate_sum : float;   (* Σ r_i over fluid-backlogged sessions *)
  mutable v : float;
  mutable v_time : float;            (* server time at which [v] was computed *)
  mutable epoch : int;
}

let create ~rate =
  if rate <= 0.0 then invalid_arg "Gps_clock.create: rate must be positive";
  {
    rate;
    sessions = Vec.create ();
    departures = Prioq.Indexed_heap.create 16;
    active_rate_sum = 0.0;
    v = 0.0;
    v_time = 0.0;
    epoch = 0;
  }

let add_session t ~rate =
  if rate <= 0.0 then invalid_arg "Gps_clock.add_session: rate must be positive";
  Vec.push t.sessions
    { rate; last_finish = 0.0; stamp_epoch = -1; in_fluid = false }

(* Replay fluid departures between [t.v_time] and [now]. Each iteration
   either retires the session with the smallest virtual finish (a fluid
   departure epoch) or consumes the remaining real-time interval. *)
let rec advance t ~now =
  if now > t.v_time then begin
    match Prioq.Indexed_heap.min_binding t.departures with
    | None -> t.v_time <- now (* fluid system idle: V frozen (at 0) *)
    | Some (idx, f_min) ->
      let slope = t.rate /. t.active_rate_sum in
      let dt_to_departure = (f_min -. t.v) /. slope in
      if t.v_time +. dt_to_departure <= now then begin
        let s = Vec.get t.sessions idx in
        t.v <- f_min;
        t.v_time <- t.v_time +. dt_to_departure;
        ignore (Prioq.Indexed_heap.pop_min t.departures);
        s.in_fluid <- false;
        t.active_rate_sum <- t.active_rate_sum -. s.rate;
        if Prioq.Indexed_heap.is_empty t.departures then begin
          (* busy period ended: reset per Parekh–Gallager *)
          t.active_rate_sum <- 0.0;
          t.v <- 0.0;
          t.epoch <- t.epoch + 1;
          t.v_time <- now
        end
        else advance t ~now
      end
      else begin
        t.v <- t.v +. ((now -. t.v_time) *. slope);
        t.v_time <- now
      end
  end

let on_arrival t ~now ~session ~size_bits =
  if size_bits <= 0.0 then invalid_arg "Gps_clock.on_arrival: size must be positive";
  advance t ~now;
  let s = Vec.get t.sessions session in
  let prev_finish = if s.stamp_epoch = t.epoch then s.last_finish else 0.0 in
  let start = Float.max prev_finish t.v in
  let finish = start +. (size_bits /. s.rate) in
  s.last_finish <- finish;
  s.stamp_epoch <- t.epoch;
  if not s.in_fluid then begin
    s.in_fluid <- true;
    t.active_rate_sum <- t.active_rate_sum +. s.rate;
    Prioq.Indexed_heap.add t.departures ~key:session ~prio:finish
  end
  else Prioq.Indexed_heap.update t.departures ~key:session ~prio:finish;
  (start, finish)

let virtual_time t ~now =
  advance t ~now;
  t.v

let epoch t ~now =
  advance t ~now;
  t.epoch

let gps_backlogged t ~now ~session =
  advance t ~now;
  (Vec.get t.sessions session).in_fluid

let busy t ~now =
  advance t ~now;
  not (Prioq.Indexed_heap.is_empty t.departures)
