(** Allocation-free FIFO of (start, finish) virtual-time stamp pairs.

    Backs the per-session stamp queues of the reference policies: the two
    coordinates live in parallel unboxed [floatarray] rings (power-of-two
    capacity, grow by doubling), so the per-packet path allocates nothing —
    no tuples, no queue cells, no options. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 8) is rounded up to a power of two. *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Empty the queue (O(1); the rings are kept). *)

val push : t -> start:float -> finish:float -> unit
(** Append a stamp pair, growing the rings if full. *)

val peek_start : t -> float
(** Start coordinate of the head stamp. @raise Queue.Empty when empty. *)

val peek_finish : t -> float
(** Finish coordinate of the head stamp. @raise Queue.Empty when empty. *)

val drop : t -> unit
(** Discard the head stamp. @raise Queue.Empty when empty. *)
