(** Generation-tagged session handles.

    {!Sched_intf.t.open_session} returns one of these instead of a raw
    session index: the handle remembers both the arena {e slot} the session
    occupies and the slot's allocation {e generation}. When a session is
    closed its slot goes back on the policy's freelist and the generation is
    bumped, so a handle kept past [close_session] no longer resolves —
    {!Session_pool.resolve} raises {!Session_pool.Stale_handle} instead of
    silently addressing whichever session recycled the slot. This mirrors
    the packed event ids [Engine.Simulator] hands out over
    [Engine.Event_pool].

    The type is abstract: callers cannot fabricate a handle from a raw int
    (use {!of_int_unsafe} only to revive a handle previously exported with
    {!to_int}, e.g. across a serialization boundary). *)

type t

val pack : slot:int -> gen:int -> t
(** Used by {!Session_pool} (and custom policies): tag [slot] with
    generation [gen]. @raise Invalid_argument if [slot] is negative or
    exceeds {!max_slot}. *)

val max_slot : int

val gen_mask : int
(** Mask applied to generations before packing; pool implementations bump
    generations modulo this so pool and handle agree on wraparound. *)

val slot : t -> int
(** The arena slot this handle addresses. Valid only while the handle is
    live — resolve through {!Session_pool.resolve} (or the owning policy's
    [session_of_handle]) instead of calling this on untrusted handles. *)

val generation : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** Stable external encoding (slot + generation packed in one int). *)

val of_int_unsafe : int -> t
(** Inverse of {!to_int}. No validation — the suffix is the warning. *)

val pp : Format.formatter -> t -> unit
