(** Virtual Clock (Zhang '90): per-session real-time clocks.

    Each arrival is stamped [VC_i = max(now, VC_i) + L/r_i] and the server
    serves the smallest stamp. Guarantees rates but is notoriously unfair
    about excess bandwidth — a session that idles builds no credit, while
    one that over-sends is punished indefinitely. Included as a baseline to
    contrast with the PFQ family on fairness benches. *)

val make : rate:float -> Sched_intf.t
(** @deprecated Prefer the unified constructor surface in
    [Hpfq.Schedulers]; this per-discipline entry point remains as its
    plumbing. *)

val factory : Sched_intf.factory
