(** Minimal growable array (OCaml 5.1 has no [Dynarray] yet).
    Used for per-session state tables inside the schedulers. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Append and return the new element's index. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
