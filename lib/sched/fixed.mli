(** Fixed-point virtual-time arithmetic (scaled integer ticks).

    Virtual time is represented as an int count of ticks, [2^shift] ticks
    per virtual-time second. Each session's rate is quantized {e once} to
    an integer ticks-per-bit increment; every subsequent stamp update
    (eqs. 27–29) is exact integer addition, so the scheduler never
    accumulates per-packet rounding the way a float engine does — and
    eligibility tests are exact [<=] with no {!Float_cmp} slack.

    Scale choice: [shift] trades rate resolution (relative rate error
    [2^-shift]) against overflow horizon ([2^(62-shift)] vtime-seconds).
    The default 20 supports rates up to ~[2^19] bits per vtime-second at
    better than 2 ppm and a horizon of ~[4.4e12] vtime-seconds. *)

val default_shift : int

val one : shift:int -> int
(** Ticks per virtual-time second. *)

val ticks_per_bit : shift:int -> rate:float -> int
(** The session's quantized inverse rate, [round(2^shift / rate)], clamped
    to at least 1 tick/bit.
    @raise Invalid_argument if [rate <= 0]. *)

val of_float : shift:int -> float -> int
val to_float : shift:int -> int -> float

val horizon_seconds : shift:int -> float
(** Largest representable virtual time, in vtime-seconds. *)
