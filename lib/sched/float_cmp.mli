(** Shared floating-point slack for virtual-time comparisons.

    All schedulers that split sessions into eligible ([S_i ≤ V]) and
    waiting sets must use the same tolerance, otherwise two disciplines
    fed identical arrivals can disagree about eligibility at float
    precision. *)

val epsilon : float
(** Relative tolerance ([1e-9]); see the implementation comment for why
    this value. *)

val le_with_slack : float -> float -> bool
(** [le_with_slack a b] is [a <= b] up to [epsilon] relative (and
    absolute, for values near zero) slack:
    [a <= b + epsilon * (1 + |b|)]. *)
