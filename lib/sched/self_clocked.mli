(** Self-clocked disciplines: SCFQ (Golestani '94) and SFQ (start-time fair
    queueing).

    Both avoid the GPS fluid emulation by reusing a tag of the packet
    currently in service as the virtual time:

    - {b SCFQ}: [v(t)] = {e finish} tag of the in-service packet; arrivals
      stamp [S = max(F_prev, v)], [F = S + L/r_i]; serve smallest [F].
    - {b SFQ}: [v(t)] = {e start} tag of the in-service packet; same
      stamping; serve smallest [S].

    Their virtual times can have slope 0 over long stretches, which is why
    the delay bounds (and WFIs) of the resulting servers are loose — the
    property the paper contrasts WF²Q+ against (§3.4). Tags reset whenever
    the system drains (busy-period epochs). *)

type flavour = Scfq | Sfq

val make : flavour:flavour -> name:string -> rate:float -> Sched_intf.t
(** @deprecated Prefer the unified constructor surface in
    [Hpfq.Schedulers]; this per-discipline entry point remains as its
    plumbing. *)

val scfq : Sched_intf.factory
val sfq : Sched_intf.factory
