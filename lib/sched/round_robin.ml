type session = {
  rate : float;
  mutable head_bits : float;
  mutable deficit : float; (* bits (DRR) or packet credits (WRR) *)
  mutable topped : bool;   (* quantum already granted on this visit *)
  mutable backlogged : bool;
}

type state = {
  server_rate : float;
  quantum_of : rate:float -> server_rate:float -> float;
  serve_cost : head_bits:float -> float;
  sessions : session Vec.t;
  pool : Session_pool.t;
  active : int Queue.t;
  mutable backlogged_count : int;
  mutable rounds : float; (* coarse "virtual time": rounds completed *)
  mutable observer : Sched_intf.observer option;
}

let make_policy ~name ~quantum_of ~serve_cost ~rate =
  let t =
    {
      server_rate = rate;
      quantum_of;
      serve_cost;
      sessions = Vec.create ();
      pool = Session_pool.create ~name:name ();
      active = Queue.create ();
      backlogged_count = 0;
      rounds = 0.0;
      observer = None;
    }
  in
  let open_session ~rate =
    if rate <= 0.0 then invalid_arg (name ^ ".open_session: bad rate");
    let slot = Session_pool.alloc t.pool in
    let fresh =
      { rate; head_bits = 0.0; deficit = 0.0; topped = false; backlogged = false }
    in
    if slot = Vec.length t.sessions then ignore (Vec.push t.sessions fresh)
    else Vec.set t.sessions slot fresh;
    Session_pool.handle t.pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve t.pool h in
    let s = Vec.get t.sessions slot in
    if s.backlogged then begin
      match policy with
      | `Drain -> Session_pool.mark_draining t.pool slot
      | `Drop ->
        (* The round-robin list has no removal primitive; rebuild it without
           the dropped session (close is not a hot-path operation here). *)
        let keep = Queue.create () in
        Queue.iter (fun s' -> if s' <> slot then Queue.push s' keep) t.active;
        Queue.clear t.active;
        Queue.transfer keep t.active;
        s.backlogged <- false;
        s.deficit <- 0.0;
        s.topped <- false;
        t.backlogged_count <- t.backlogged_count - 1;
        Session_pool.free t.pool slot
    end
    else Session_pool.free t.pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  let arrive ~now ~session ~size_bits =
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_arrive ~now ~vtime:t.rounds ~session ~size_bits
  in
  let backlog ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    s.backlogged <- true;
    s.head_bits <- head_bits;
    s.deficit <- 0.0;
    s.topped <- false;
    t.backlogged_count <- t.backlogged_count + 1;
    Queue.push session t.active;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_backlog ~now ~vtime:t.rounds ~session ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    (Vec.get t.sessions session).head_bits <- head_bits;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_requeue ~now ~vtime:t.rounds ~session ~head_bits
  in
  let set_idle ~now ~session =
    let s = Vec.get t.sessions session in
    s.backlogged <- false;
    s.deficit <- 0.0;
    s.topped <- false;
    t.backlogged_count <- t.backlogged_count - 1;
    (* The served session is always at the front of the active list. *)
    (match Queue.peek_opt t.active with
    | Some front when front = session -> ignore (Queue.pop t.active)
    | Some _ | None -> invalid_arg (name ^ ": set_idle of non-front session"));
    if Session_pool.is_draining t.pool session then Session_pool.free t.pool session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:t.rounds ~session
  in
  let rec select ~now =
    match Queue.peek_opt t.active with
    | None -> None
    | Some session ->
      let s = Vec.get t.sessions session in
      if not s.topped then begin
        s.deficit <- s.deficit +. t.quantum_of ~rate:s.rate ~server_rate:t.server_rate;
        s.topped <- true
      end;
      let cost = t.serve_cost ~head_bits:s.head_bits in
      if s.deficit >= cost then begin
        s.deficit <- s.deficit -. cost;
        (match t.observer with
        | None -> ()
        | Some o -> o.Sched_intf.on_select ~now ~vtime:t.rounds ~session);
        Some session
      end
      else begin
        (* rotate: quantum carries over (DRR's deficit), freshness resets *)
        ignore (Queue.pop t.active);
        s.topped <- false;
        Queue.push session t.active;
        t.rounds <- t.rounds +. (1.0 /. float_of_int (max 1 t.backlogged_count));
        select ~now
      end
  in
  {
    Sched_intf.name;
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve t.pool h);
    live_sessions = (fun () -> Session_pool.live_count t.pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now:_ -> t.rounds);
    backlogged_count = (fun () -> t.backlogged_count);
    set_observer = (fun o -> t.observer <- o);
  }

let drr ?(frame_bits = 65536.0) () =
  let quantum_of ~rate ~server_rate = frame_bits *. rate /. server_rate in
  let serve_cost ~head_bits = head_bits in
  {
    Sched_intf.kind = "DRR";
    make = (fun ~rate -> make_policy ~name:"DRR" ~quantum_of ~serve_cost ~rate);
  }

let wrr ?(packets_per_round = 16) () =
  let quantum_of ~rate ~server_rate =
    Float.max 1.0 (Float.round (float_of_int packets_per_round *. rate /. server_rate))
  in
  let serve_cost ~head_bits:_ = 1.0 in
  {
    Sched_intf.kind = "WRR";
    make = (fun ~rate -> make_policy ~name:"WRR" ~quantum_of ~serve_cost ~rate);
  }
