(* A session handle is a generation-tagged slot index packed into one
   immediate int: slot in the low bits, the slot's allocation generation in
   the high bits. Packing (rather than a record) keeps handles free to
   copy, store in int arrays, and compare — the same reasoning as
   Simulator's packed event ids over Engine.Event_pool. *)

type t = int

(* 31 bits of slot (2^31 sessions per policy instance is far beyond any
   arena this repo sizes) leaves 31 generation bits on 63-bit ints; the
   generation wraps harmlessly — a stale handle is only honoured if its
   slot was recycled exactly 2^31 times between uses. *)
let slot_bits = 31
let slot_mask = (1 lsl slot_bits) - 1
let max_slot = slot_mask
let gen_mask = (1 lsl slot_bits) - 1

let pack ~slot ~gen =
  if slot < 0 || slot > max_slot then invalid_arg "Session_handle.pack: bad slot";
  slot lor ((gen land gen_mask) lsl slot_bits)

let slot h = h land slot_mask
let generation h = (h lsr slot_bits) land gen_mask
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let to_int h = h
let of_int_unsafe i = i
let pp fmt h = Format.fprintf fmt "session#%d.g%d" (slot h) (generation h)
