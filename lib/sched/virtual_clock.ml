type session = {
  rate : float;
  stamps : float Queue.t;
  mutable vc : float;
  mutable backlogged : bool;
}

let make ~rate:_ =
  let sessions : session Vec.t = Vec.create () in
  let ready = Prioq.Indexed_heap.create 16 in
  let backlogged_count = ref 0 in
  let last_selected_stamp = ref 0.0 in
  let observer : Sched_intf.observer option ref = ref None in
  let add_session ~rate =
    Vec.push sessions { rate; stamps = Queue.create (); vc = 0.0; backlogged = false }
  in
  let arrive ~now ~session ~size_bits =
    let s = Vec.get sessions session in
    s.vc <- Float.max now s.vc +. (size_bits /. s.rate);
    Queue.push s.vc s.stamps;
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_arrive ~now ~vtime:!last_selected_stamp ~session ~size_bits
  in
  let head_stamp session =
    let s = Vec.get sessions session in
    match Queue.peek_opt s.stamps with
    | Some stamp -> stamp
    | None -> invalid_arg "Virtual_clock: session has no stamped packet"
  in
  let backlog ~now ~session ~head_bits =
    (Vec.get sessions session).backlogged <- true;
    incr backlogged_count;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_stamp session);
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_backlog ~now ~vtime:!last_selected_stamp ~session ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    ignore (Queue.pop (Vec.get sessions session).stamps);
    Prioq.Indexed_heap.remove ready session;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_stamp session);
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_requeue ~now ~vtime:!last_selected_stamp ~session ~head_bits
  in
  let set_idle ~now ~session =
    let s = Vec.get sessions session in
    ignore (Queue.pop s.stamps);
    Prioq.Indexed_heap.remove ready session;
    s.backlogged <- false;
    decr backlogged_count;
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:!last_selected_stamp ~session
  in
  let select ~now =
    match Prioq.Indexed_heap.min_binding ready with
    | None -> None
    | Some (session, stamp) ->
      last_selected_stamp := stamp;
      (match !observer with
      | None -> ()
      | Some o -> o.Sched_intf.on_select ~now ~vtime:stamp ~session);
      Some session
  in
  {
    Sched_intf.name = "VirtualClock";
    add_session;
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now:_ -> !last_selected_stamp);
    backlogged_count = (fun () -> !backlogged_count);
    set_observer = (fun o -> observer := o);
  }

let factory = { Sched_intf.kind = "VirtualClock"; make }
