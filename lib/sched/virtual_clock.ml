type session = {
  rate : float;
  (* single-coordinate stamps: only the start ring of the pair queue is
     meaningful (finish mirrors it) *)
  stamps : Stamp_queue.t;
  mutable vc : float;
  mutable backlogged : bool;
}

let make ~rate:_ =
  let sessions : session Vec.t = Vec.create () in
  let pool = Session_pool.create ~name:"Virtual_clock" () in
  let ready = Prioq.Indexed_heap.create 16 in
  let backlogged_count = ref 0 in
  let last_selected_stamp = ref 0.0 in
  let observer : Sched_intf.observer option ref = ref None in
  let open_session ~rate =
    if rate <= 0.0 then invalid_arg "Virtual_clock.open_session: bad rate";
    let slot = Session_pool.alloc pool in
    let fresh =
      { rate; stamps = Stamp_queue.create (); vc = 0.0; backlogged = false }
    in
    if slot = Vec.length sessions then ignore (Vec.push sessions fresh)
    else Vec.set sessions slot fresh;
    Session_pool.handle pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve pool h in
    let s = Vec.get sessions slot in
    if s.backlogged then begin
      match policy with
      | `Drain -> Session_pool.mark_draining pool slot
      | `Drop ->
        Prioq.Indexed_heap.remove ready slot;
        Stamp_queue.clear s.stamps;
        s.backlogged <- false;
        decr backlogged_count;
        Session_pool.free pool slot
    end
    else Session_pool.free pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  let arrive ~now ~session ~size_bits =
    let s = Vec.get sessions session in
    s.vc <- Float.max now s.vc +. (size_bits /. s.rate);
    Stamp_queue.push s.stamps ~start:s.vc ~finish:s.vc;
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_arrive ~now ~vtime:!last_selected_stamp ~session ~size_bits
  in
  let head_stamp session =
    let s = Vec.get sessions session in
    if Stamp_queue.is_empty s.stamps then
      invalid_arg "Virtual_clock: session has no stamped packet";
    Stamp_queue.peek_start s.stamps
  in
  let backlog ~now ~session ~head_bits =
    (Vec.get sessions session).backlogged <- true;
    incr backlogged_count;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_stamp session);
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_backlog ~now ~vtime:!last_selected_stamp ~session ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    Stamp_queue.drop (Vec.get sessions session).stamps;
    Prioq.Indexed_heap.remove ready session;
    Prioq.Indexed_heap.add ready ~key:session ~prio:(head_stamp session);
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_requeue ~now ~vtime:!last_selected_stamp ~session ~head_bits
  in
  let set_idle ~now ~session =
    let s = Vec.get sessions session in
    Stamp_queue.drop s.stamps;
    Prioq.Indexed_heap.remove ready session;
    s.backlogged <- false;
    decr backlogged_count;
    if Session_pool.is_draining pool session then Session_pool.free pool session;
    match !observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:!last_selected_stamp ~session
  in
  let select ~now =
    match Prioq.Indexed_heap.min_binding ready with
    | None -> None
    | Some (session, stamp) ->
      last_selected_stamp := stamp;
      (match !observer with
      | None -> ()
      | Some o -> o.Sched_intf.on_select ~now ~vtime:stamp ~session);
      Some session
  in
  {
    Sched_intf.name = "VirtualClock";
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve pool h);
    live_sessions = (fun () -> Session_pool.live_count pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now:_ -> !last_selected_stamp);
    backlogged_count = (fun () -> !backlogged_count);
    set_observer = (fun o -> observer := o);
  }

let factory = { Sched_intf.kind = "VirtualClock"; make }
