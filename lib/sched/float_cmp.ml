(* The one floating-point slack used by every virtual-time eligibility
   comparison in the repository (WF2Q+, its per-packet-stamp ablation, and
   the exact-GPS SEFF schedulers). Kept in a single place so all
   disciplines agree on what "S_i <= V" means at float precision. *)

(* Relative tolerance. Start/finish stamps are sums of [L/r] terms, so two
   mathematically equal stamps computed along different association orders
   differ by a few ulps; 1e-9 relative (plus 1e-9 absolute for values near
   zero) is orders of magnitude above that noise yet far below any real
   stamp gap (the smallest inter-stamp spacing is one packet's worth of
   virtual time). *)
let epsilon = 1e-9

(* [@inline] matters: without it every cross-module call boxes both float
   arguments (non-flambda Closure only unboxes across calls it inlines),
   which showed up as ~4 minor words per eligibility test on the bench
   hot path. *)
let[@inline] le_with_slack a b = a <= b +. (epsilon *. (1.0 +. Float.abs b))
