(* Unboxed FIFO of (start, finish) virtual-time stamp pairs.

   The reference policies (GPS-based WFQ/WF²Q, SCFQ/SFQ, VirtualClock)
   keep one stamp per queued packet. A [(float * float) Queue.t] costs a
   boxed tuple plus a Queue cell per packet and an option per peek; this
   ring stores the two coordinates in parallel [floatarray]s, so pushes,
   peeks and drops allocate nothing. Same ring discipline as [Net.Fifo]:
   power-of-two capacity, masked indices, grow by doubling. *)

type t = {
  mutable s : floatarray;
  mutable f : floatarray;
  mutable head : int;
  mutable len : int;
}

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ?(capacity = 8) () =
  let cap = pow2_at_least (max 2 capacity) 2 in
  { s = Float.Array.create cap; f = Float.Array.create cap; head = 0; len = 0 }

let[@inline] length t = t.len
let[@inline] is_empty t = t.len = 0

let clear t =
  t.head <- 0;
  t.len <- 0

let grow t =
  let cap = Float.Array.length t.s in
  let mask = cap - 1 in
  let ns = Float.Array.create (2 * cap) and nf = Float.Array.create (2 * cap) in
  for i = 0 to t.len - 1 do
    let j = (t.head + i) land mask in
    Float.Array.unsafe_set ns i (Float.Array.unsafe_get t.s j);
    Float.Array.unsafe_set nf i (Float.Array.unsafe_get t.f j)
  done;
  t.s <- ns;
  t.f <- nf;
  t.head <- 0

let[@inline] push t ~start ~finish =
  if t.len = Float.Array.length t.s then grow t;
  let i = (t.head + t.len) land (Float.Array.length t.s - 1) in
  Float.Array.unsafe_set t.s i start;
  Float.Array.unsafe_set t.f i finish;
  t.len <- t.len + 1

let[@inline] peek_start t =
  if t.len = 0 then raise Queue.Empty;
  Float.Array.unsafe_get t.s t.head

let[@inline] peek_finish t =
  if t.len = 0 then raise Queue.Empty;
  Float.Array.unsafe_get t.f t.head

let[@inline] drop t =
  if t.len = 0 then raise Queue.Empty;
  t.head <- (t.head + 1) land (Float.Array.length t.s - 1);
  t.len <- t.len - 1
