type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length v = v.size

let push v x =
  let capacity = Array.length v.data in
  if v.size = capacity then begin
    let data = Array.make (max 8 (2 * capacity)) x in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1;
  v.size - 1

let check v i =
  if i < 0 || i >= v.size then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc
