(** Frame-based baselines: Deficit Round Robin and Weighted Round Robin.

    Related-work algorithms the paper cites as low-complexity GPS
    approximations with large WFIs [17]. DRR gives each backlogged session a
    byte quantum proportional to its rate each round; WRR serves an integer
    number of packets per round. Both are O(1) per packet and both fail the
    worst-case-fairness benches — which is the point of including them. *)

val drr : ?frame_bits:float -> unit -> Sched_intf.factory
(** [frame_bits] is the total quantum handed out per round across a unit of
    normalized rate; a session of rate [r_i] on a server of rate [r]
    receives [frame_bits · r_i/r] bits per round. Default 65536. *)

val wrr : ?packets_per_round:int -> unit -> Sched_intf.factory
(** A session of rate [r_i] gets [max 1 (round(packets_per_round · r_i/r))]
    packets per round. Default 16. *)
