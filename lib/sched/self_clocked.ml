type flavour = Scfq | Sfq

type session = {
  rate : float;
  stamps : (float * float) Queue.t;
  mutable last_finish : float;
  mutable stamp_epoch : int;
  mutable backlogged : bool;
}

type state = {
  flavour : flavour;
  sessions : session Vec.t;
  ready : Prioq.Indexed_heap.t; (* keyed by F (SCFQ) or S (SFQ) *)
  mutable v : float;            (* tag of the packet in service *)
  mutable epoch : int;
  mutable in_service : bool;
  mutable backlogged_count : int;
  mutable observer : Sched_intf.observer option;
}

let key_of state (start, finish) =
  match state.flavour with Scfq -> finish | Sfq -> start

let make ~flavour ~name ~rate:_ =
  let t =
    {
      flavour;
      sessions = Vec.create ();
      ready = Prioq.Indexed_heap.create 16;
      v = 0.0;
      epoch = 0;
      in_service = false;
      backlogged_count = 0;
      observer = None;
    }
  in
  let add_session ~rate =
    Vec.push t.sessions
      {
        rate;
        stamps = Queue.create ();
        last_finish = 0.0;
        stamp_epoch = -1;
        backlogged = false;
      }
  in
  let arrive ~now ~session ~size_bits =
    let s = Vec.get t.sessions session in
    let prev = if s.stamp_epoch = t.epoch then s.last_finish else 0.0 in
    let start = Float.max prev t.v in
    let finish = start +. (size_bits /. s.rate) in
    s.last_finish <- finish;
    s.stamp_epoch <- t.epoch;
    Queue.push (start, finish) s.stamps;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_arrive ~now ~vtime:t.v ~session ~size_bits
  in
  let head_key session =
    let s = Vec.get t.sessions session in
    match Queue.peek_opt s.stamps with
    | Some stamps -> key_of t stamps
    | None -> invalid_arg (name ^ ": session has no stamped packet")
  in
  let backlog ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    s.backlogged <- true;
    t.backlogged_count <- t.backlogged_count + 1;
    Prioq.Indexed_heap.add t.ready ~key:session ~prio:(head_key session);
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_backlog ~now ~vtime:t.v ~session ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    ignore (Queue.pop s.stamps);
    Prioq.Indexed_heap.remove t.ready session;
    Prioq.Indexed_heap.add t.ready ~key:session ~prio:(head_key session);
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_requeue ~now ~vtime:t.v ~session ~head_bits
  in
  let set_idle ~now ~session =
    let s = Vec.get t.sessions session in
    ignore (Queue.pop s.stamps);
    Prioq.Indexed_heap.remove t.ready session;
    s.backlogged <- false;
    t.backlogged_count <- t.backlogged_count - 1;
    if t.backlogged_count = 0 then begin
      (* busy period over: reset the self-clock *)
      t.in_service <- false;
      t.v <- 0.0;
      t.epoch <- t.epoch + 1
    end;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:t.v ~session
  in
  let select ~now =
    match Prioq.Indexed_heap.min_key t.ready with
    | None -> None
    | Some session ->
      let s = Vec.get t.sessions session in
      (match Queue.peek_opt s.stamps with
      | Some stamps -> t.v <- key_of t stamps
      | None -> assert false);
      t.in_service <- true;
      (match t.observer with
      | None -> ()
      | Some o -> o.Sched_intf.on_select ~now ~vtime:t.v ~session);
      Some session
  in
  {
    Sched_intf.name;
    add_session;
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now:_ -> t.v);
    backlogged_count = (fun () -> t.backlogged_count);
    set_observer = (fun o -> t.observer <- o);
  }

let scfq =
  { Sched_intf.kind = "SCFQ"; make = (fun ~rate -> make ~flavour:Scfq ~name:"SCFQ" ~rate) }

let sfq =
  { Sched_intf.kind = "SFQ"; make = (fun ~rate -> make ~flavour:Sfq ~name:"SFQ" ~rate) }
