type flavour = Scfq | Sfq

type session = {
  rate : float;
  stamps : Stamp_queue.t; (* (S, F) per queued packet, unboxed *)
  mutable last_finish : float;
  mutable stamp_epoch : int;
  mutable backlogged : bool;
}

type state = {
  flavour : flavour;
  sessions : session Vec.t;
  pool : Session_pool.t;
  ready : Prioq.Indexed_heap.t; (* keyed by F (SCFQ) or S (SFQ) *)
  mutable v : float;            (* tag of the packet in service *)
  mutable epoch : int;
  mutable in_service : bool;
  mutable backlogged_count : int;
  mutable observer : Sched_intf.observer option;
}

(* Head-stamp key under the flavour: F for SCFQ, S for SFQ. *)
let head_key_of state stamps =
  match state.flavour with
  | Scfq -> Stamp_queue.peek_finish stamps
  | Sfq -> Stamp_queue.peek_start stamps

let make ~flavour ~name ~rate:_ =
  let t =
    {
      flavour;
      sessions = Vec.create ();
      pool = Session_pool.create ~name:name ();
      ready = Prioq.Indexed_heap.create 16;
      v = 0.0;
      epoch = 0;
      in_service = false;
      backlogged_count = 0;
      observer = None;
    }
  in
  let open_session ~rate =
    if rate <= 0.0 then invalid_arg (name ^ ".open_session: bad rate");
    let slot = Session_pool.alloc t.pool in
    let fresh =
      {
        rate;
        stamps = Stamp_queue.create ();
        last_finish = 0.0;
        stamp_epoch = -1;
        backlogged = false;
      }
    in
    if slot = Vec.length t.sessions then ignore (Vec.push t.sessions fresh)
    else Vec.set t.sessions slot fresh;
    Session_pool.handle t.pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve t.pool h in
    let s = Vec.get t.sessions slot in
    if s.backlogged then begin
      match policy with
      | `Drain -> Session_pool.mark_draining t.pool slot
      | `Drop ->
        Prioq.Indexed_heap.remove t.ready slot;
        Stamp_queue.clear s.stamps;
        s.backlogged <- false;
        t.backlogged_count <- t.backlogged_count - 1;
        if t.backlogged_count = 0 then begin
          (* same busy-period reset as set_idle *)
          t.in_service <- false;
          t.v <- 0.0;
          t.epoch <- t.epoch + 1
        end;
        Session_pool.free t.pool slot
    end
    else Session_pool.free t.pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  let arrive ~now ~session ~size_bits =
    let s = Vec.get t.sessions session in
    let prev = if s.stamp_epoch = t.epoch then s.last_finish else 0.0 in
    let start = Float.max prev t.v in
    let finish = start +. (size_bits /. s.rate) in
    s.last_finish <- finish;
    s.stamp_epoch <- t.epoch;
    Stamp_queue.push s.stamps ~start ~finish;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_arrive ~now ~vtime:t.v ~session ~size_bits
  in
  let head_key session =
    let s = Vec.get t.sessions session in
    if Stamp_queue.is_empty s.stamps then
      invalid_arg (name ^ ": session has no stamped packet");
    head_key_of t s.stamps
  in
  let backlog ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    s.backlogged <- true;
    t.backlogged_count <- t.backlogged_count + 1;
    Prioq.Indexed_heap.add t.ready ~key:session ~prio:(head_key session);
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_backlog ~now ~vtime:t.v ~session ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    Stamp_queue.drop s.stamps;
    Prioq.Indexed_heap.remove t.ready session;
    Prioq.Indexed_heap.add t.ready ~key:session ~prio:(head_key session);
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_requeue ~now ~vtime:t.v ~session ~head_bits
  in
  let set_idle ~now ~session =
    let s = Vec.get t.sessions session in
    Stamp_queue.drop s.stamps;
    Prioq.Indexed_heap.remove t.ready session;
    s.backlogged <- false;
    t.backlogged_count <- t.backlogged_count - 1;
    if t.backlogged_count = 0 then begin
      (* busy period over: reset the self-clock *)
      t.in_service <- false;
      t.v <- 0.0;
      t.epoch <- t.epoch + 1
    end;
    if Session_pool.is_draining t.pool session then Session_pool.free t.pool session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:t.v ~session
  in
  let select ~now =
    match Prioq.Indexed_heap.min_key t.ready with
    | None -> None
    | Some session ->
      let s = Vec.get t.sessions session in
      assert (not (Stamp_queue.is_empty s.stamps));
      t.v <- head_key_of t s.stamps;
      t.in_service <- true;
      (match t.observer with
      | None -> ()
      | Some o -> o.Sched_intf.on_select ~now ~vtime:t.v ~session);
      Some session
  in
  {
    Sched_intf.name;
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve t.pool h);
    live_sessions = (fun () -> Session_pool.live_count t.pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now:_ -> t.v);
    backlogged_count = (fun () -> t.backlogged_count);
    set_observer = (fun o -> t.observer <- o);
  }

let scfq =
  { Sched_intf.kind = "SCFQ"; make = (fun ~rate -> make ~flavour:Scfq ~name:"SCFQ" ~rate) }

let sfq =
  { Sched_intf.kind = "SFQ"; make = (fun ~rate -> make ~flavour:Sfq ~name:"SFQ" ~rate) }
