(* Hot-path throughput benchmark (bench id "perf").

   Two workloads, both dominated by the per-packet scheduling cycle whose
   O(log N) cost is the paper's headline complexity claim (eqs. 27-29):

   - one-level WF2Q+ with N perpetually backlogged sessions,
     N in 2^4 .. 2^14: packets/second through select+arrive+requeue,
     ns/cycle via bechamel, and minor words allocated per packet;
   - end-to-end H-WF2Q+ through the full Hier + Simulator stack for
     uniform trees of depth {2,4,6} x fan-out {4,16,64} (combinations
     whose leaf count exceeds a cap are reported as skipped).

   Results go to BENCH_hotpath.json at the invocation directory (the repo
   root under `dune exec bench/main.exe -- perf`) so successive PRs can
   diff machine-readable before/after numbers. *)

type one_level_row = {
  n : int;
  pkts_per_sec : float;
  ns_per_select : float; (* ns per full scheduling cycle (select-dominated) *)
  minor_words_per_pkt : float;
}

type hier_row = {
  depth : int;
  fanout : int;
  leaves : int;
  h_pkts_per_sec : float;
  h_minor_words_per_pkt : float;
}

(* [Gc.quick_stat] deltas over a measured run: collector pressure is the
   quantity the pooled packet plane is designed to remove, so the report
   carries it alongside throughput. *)
type gc_delta = {
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_promoted_words : float;
  gd_minor_words : float;
  gd_major_words : float;
}

let gc_delta_of ~(before : Gc.stat) ~(after : Gc.stat) =
  {
    gd_minor_collections = after.minor_collections - before.minor_collections;
    gd_major_collections = after.major_collections - before.major_collections;
    gd_promoted_words = after.promoted_words -. before.promoted_words;
    gd_minor_words = after.minor_words -. before.minor_words;
    gd_major_words = after.major_words -. before.major_words;
  }

type server_row = {
  s_burst : int;
  s_pkts_per_sec : float;
  s_minor_words_per_pkt : float;
  s_gc : gc_delta;
  s_pkts : float;
}

let max_hier_leaves = 4096

(* -- one-level workload -------------------------------------------------- *)

(* N perpetually backlogged unit-packet sessions; each step is one full
   scheduling cycle: select the next session, then hand it its next head
   packet (arrive + requeue). Mirrors the `complexity` bench. *)
let loaded_policy_with factory n =
  let policy = factory.Sched.Sched_intf.make ~rate:1.0 in
  let rate = 1.0 /. float_of_int n in
  for _ = 1 to n do
    ignore (policy.Sched.Sched_intf.add_session ~rate)
  done;
  for i = 0 to n - 1 do
    policy.Sched.Sched_intf.arrive ~now:0.0 ~session:i ~size_bits:1.0;
    policy.Sched.Sched_intf.backlog ~now:0.0 ~session:i ~head_bits:1.0
  done;
  let now = ref 0.0 in
  let cycle () =
    match policy.Sched.Sched_intf.select ~now:!now with
    | None -> ()
    | Some s ->
      now := !now +. 1.0;
      policy.Sched.Sched_intf.arrive ~now:!now ~session:s ~size_bits:1.0;
      policy.Sched.Sched_intf.requeue ~now:!now ~session:s ~head_bits:1.0
  in
  (policy, cycle)

let loaded_policy factory n = snd (loaded_policy_with factory n)

let time_loop cycle ~iters =
  for _ = 1 to min 1000 iters do
    cycle () (* warm caches, grow heaps to steady state *)
  done;
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    cycle ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. m0 in
  (wall, minor)

let bechamel_ns_per_cycle ~quick tests =
  let open Bechamel in
  let quota = Time.second (if quick then 0.02 else 0.25) in
  let cfg = Benchmark.cfg ~limit:(if quick then 20 else 300) ~quota ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let ns = match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan in
      (name, ns) :: acc)
    results []

(* Bechamel's ns/cycle regression stays sequential (its OLS assumes an
   unloaded machine); only the independent per-N wall/allocation rows fan
   out, with the same contention caveat as [hier_rows]. *)
let one_level ?pool ~quick ~factory () =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let sizes =
    if quick then [ 16; 64 ]
    else List.init 11 (fun i -> 1 lsl (i + 4)) (* 2^4 .. 2^14 *)
  in
  let iters = if quick then 2_000 else 200_000 in
  let tests =
    Bechamel.Test.make_grouped ~name:"cycle"
      (List.map
         (fun n ->
           Bechamel.Test.make
             ~name:(string_of_int n)
             (Bechamel.Staged.stage (loaded_policy factory n)))
         sizes)
  in
  let ns_by_size = bechamel_ns_per_cycle ~quick tests in
  Parallel.Pool.map_list pool
    ~f:(fun n ->
      let cycle = loaded_policy factory n in
      let wall, minor = time_loop cycle ~iters in
      let ns =
        match List.assoc_opt (Printf.sprintf "cycle/%d" n) ns_by_size with
        | Some x -> x
        | None -> wall /. float_of_int iters *. 1e9
      in
      {
        n;
        pkts_per_sec = float_of_int iters /. wall;
        ns_per_select = ns;
        minor_words_per_pkt = minor /. float_of_int iters;
      })
    sizes

(* -- saturated server through the full event loop ------------------------ *)

(* The same N-session saturated workload as [loaded_policy], but through
   Server + Simulator, with arrivals delivered the way a replayed trace or
   a device ingress delivers them: in coalesced ticks. Every
   [server_batched_burst] time units a bunch of that many 1-bit packets
   arrives (sessions spread by a golden-ratio stride), keeping the rate-1
   link exactly saturated. At burst_max 1 every arrival is its own
   pre-scheduled simulator event and every departure re-arms the event
   loop — two event-set round trips per packet against a pending set that
   starts out holding every future arrival. At burst_max > 1 each tick is
   ONE event applying its bunch back-to-back (the enqueue_batch /
   grouped-replay idiom) and departures drain inline between ticks, so
   the event set is touched ~2x per tick instead of ~2x per packet.
   Departure times and order are bit-identical either way (the
   burst-drain contract, test_replay.ml); only the event-set traffic
   changes — which is exactly what this row isolates (the pure
   policy-cycle loop above has no simulator to amortize). *)
let server_batched_burst = 64

let server_throughput ?config ~n ~burst_max ~target_pkts () =
  let sim =
    match config with
    | Some c -> Engine.Simulator.create_configured c
    | None -> Engine.Simulator.create ()
  in
  let factory = Hpfq.Disciplines.wf2q_plus in
  let policy = factory.Sched.Sched_intf.make ~rate:1.0 in
  let departs = ref 0 in
  let srv = Hpfq.Server.create ~sim ~rate:1.0 ~policy ~burst_max () in
  (* handle hook: counting departures must not materialise packet records *)
  Hpfq.Server.add_depart_handle_hook srv (fun _h _t -> incr departs);
  let rate = 1.0 /. float_of_int n in
  for _ = 1 to n do
    ignore (Hpfq.Server.add_session srv ~rate ())
  done;
  let bunch = server_batched_burst in
  let ticks = max 1 (target_pkts / bunch) in
  (* [n] is a power of two, so the odd stride visits sessions uniformly *)
  let session_of i = i * 0x9E3779B1 land (n - 1) in
  let inject_one i =
    ignore (Hpfq.Server.inject srv ~session:(session_of i) ~size_bits:1.0)
  in
  if burst_max > 1 then
    for t = 0 to ticks - 1 do
      let base = t * bunch in
      ignore
        (Engine.Simulator.schedule sim ~at:(float_of_int base) (fun () ->
             for j = 0 to bunch - 1 do
               inject_one (base + j)
             done))
    done
  else
    for i = 0 to (ticks * bunch) - 1 do
      ignore
        (Engine.Simulator.schedule sim
           ~at:(float_of_int (i / bunch * bunch))
           (fun () -> inject_one i))
    done;
  (* a standing backlog keeps the link busy across tick seams; injected
     synchronously at time 0, before any arrival event fires *)
  for s = 0 to min n 128 - 1 do
    Hpfq.Server.inject_batch srv ~session:s ~size_bits:1.0 ~count:1
  done;
  (* rate 1 bit/s and 1-bit packets: the horizon equals the packet count *)
  let horizon = float_of_int (ticks * bunch) in
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  Engine.Simulator.run ~until:horizon sim;
  let wall = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  let minor = s1.minor_words -. s0.minor_words in
  let pkts = float_of_int !departs in
  (pkts /. wall, minor /. Float.max 1.0 pkts, gc_delta_of ~before:s0 ~after:s1, pkts)

let server_rows ?config ~quick () =
  let n = 4096 in
  let target_pkts = if quick then 2_000 else 400_000 in
  List.map
    (fun burst ->
      let pps, words, gc, pkts =
        server_throughput ?config ~n ~burst_max:burst ~target_pkts ()
      in
      {
        s_burst = burst;
        s_pkts_per_sec = pps;
        s_minor_words_per_pkt = words;
        s_gc = gc;
        s_pkts = pkts;
      })
    [ 1; 8; server_batched_burst ]

(* -- hierarchical workload ----------------------------------------------- *)

let rec uniform_spec ~depth ~fanout ~name ~rate =
  if depth = 0 then Hpfq.Class_tree.leaf name ~rate
  else
    Hpfq.Class_tree.node name ~rate
      (List.init fanout (fun i ->
           uniform_spec ~depth:(depth - 1) ~fanout
             ~name:(Printf.sprintf "%s.%d" name i)
             ~rate:(rate /. float_of_int fanout)))

(* Every leaf kept at a steady backlog of two packets: prime with two,
   re-inject one on each departure. The horizon is sized so roughly
   [target_pkts] packets depart whatever the tree's root rate. *)
let hier_throughput_spec ?config ?engine ~spec ~factory ~pkt_bits ~target_pkts () =
  let module HE = Hpfq.Hier_engine in
  let leaves = ref [] in
  let sim =
    match config with
    | Some c -> Engine.Simulator.create_configured c
    | None -> Engine.Simulator.create ()
  in
  let departs = ref 0 in
  let reinject_name = Hashtbl.create 256 in
  let hier = HE.create ~sim ~spec ~factory ?engine () in
  (* handle hook: the re-injection loop is the measured hot path, so it
     must not materialise a packet record per departure *)
  HE.add_depart_handle_hook hier (fun _h ~leaf _t ->
      incr departs;
      match Hashtbl.find_opt reinject_name leaf with
      | Some id -> ignore (HE.inject hier ~leaf:id ~size_bits:pkt_bits)
      | None -> ());
  List.iter
    (fun (name, id) ->
      Hashtbl.replace reinject_name name id;
      leaves := id :: !leaves)
    (HE.leaf_ids hier);
  List.iter
    (fun id -> HE.inject_many hier ~leaf:id ~size_bits:pkt_bits ~count:2)
    !leaves;
  let horizon =
    float_of_int target_pkts *. pkt_bits /. Hpfq.Class_tree.rate spec
  in
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Engine.Simulator.run ~until:horizon sim;
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. m0 in
  let pkts = float_of_int !departs in
  ( float_of_int (List.length !leaves),
    pkts /. wall,
    minor /. Float.max 1.0 pkts )

(* Root rate 1 bit/s and 1-bit packets make the simulated horizon equal
   the departure count. *)
let hier_throughput ?config ?engine ~depth ~fanout ~factory ~target_pkts () =
  hier_throughput_spec ?config ?engine
    ~spec:(uniform_spec ~depth ~fanout ~name:"root" ~rate:1.0)
    ~factory ~pkt_bits:1.0 ~target_pkts ()

(* The depth × fan-out grid cells are independent full-stack simulations,
   so they fan out on [pool] — but concurrent cells contend for cores and
   memory bandwidth, which inflates each other's wall clock, so the
   *numbers* are only comparable across runs at the same -j. The default
   stays sequential; the committed baseline is always -j1 (the guard
   measures sequentially regardless). *)
let hier_rows ?pool ~quick ~factory () =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let config = Engine.Simulator.snapshot_config () in
  let combos =
    if quick then [ (2, 4) ]
    else
      List.concat_map (fun d -> List.map (fun f -> (d, f)) [ 4; 16; 64 ]) [ 2; 4; 6 ]
  in
  let target_pkts = if quick then 500 else 100_000 in
  Parallel.Pool.map_list pool
    ~f:(fun (depth, fanout) ->
      let leaves = int_of_float (float_of_int fanout ** float_of_int depth) in
      if leaves > max_hier_leaves then Either.Right (depth, fanout, leaves)
      else begin
        let n_leaves, pps, words =
          hier_throughput ~config ~depth ~fanout ~factory ~target_pkts ()
        in
        Either.Left
          {
            depth;
            fanout;
            leaves = int_of_float n_leaves;
            h_pkts_per_sec = pps;
            h_minor_words_per_pkt = words;
          }
      end)
    combos
  |> List.partition_map Fun.id

(* Single-number probe for comparing two builds of the scheduler under
   identical machine conditions (run alternately against a baseline
   checkout carrying this same harness): median over [runs] one-level
   WF2Q+ throughput measurements at [n] sessions, best-of-[runs]:
   machine interference only ever slows a sample down, so the fastest
   sample is the most stable estimator of what the build can do (the
   classic min-time microbenchmark estimator). The report's headline
   pkts_per_sec and the guard's fresh measurement both come from this
   probe, so guard comparisons are apples-to-apples — the per-N rows use
   shorter single samples. *)
let headline ?(n = 4096) ?(iters = 1_000_000) ?(runs = 9) () =
  let factory = Hpfq.Disciplines.wf2q_plus in
  let samples =
    List.init runs (fun _ ->
        let cycle = loaded_policy factory n in
        let wall, _ = time_loop cycle ~iters in
        float_of_int iters /. wall)
  in
  List.fold_left Float.max 0.0 samples

(* -- JSON report --------------------------------------------------------- *)

let json_of_run ~quick ~headline_pps ~one_level_rows ~server_rows ~hier_done
    ~hier_skipped =
  let one_level_json =
    Json.Arr
      (List.map
         (fun r ->
           Json.Obj
             [
               ("n", Json.Num (float_of_int r.n));
               ("pkts_per_sec", Json.Num r.pkts_per_sec);
               ("ns_per_select", Json.Num r.ns_per_select);
               ("minor_words_per_pkt", Json.Num r.minor_words_per_pkt);
             ])
         one_level_rows)
  in
  let hier_json =
    Json.Arr
      (List.map
         (fun r ->
           Json.Obj
             [
               ("depth", Json.Num (float_of_int r.depth));
               ("fanout", Json.Num (float_of_int r.fanout));
               ("leaves", Json.Num (float_of_int r.leaves));
               ("pkts_per_sec", Json.Num r.h_pkts_per_sec);
               ("minor_words_per_pkt", Json.Num r.h_minor_words_per_pkt);
             ])
         hier_done)
  in
  let skipped_json =
    Json.Arr
      (List.map
         (fun (d, f, leaves) ->
           Json.Obj
             [
               ("depth", Json.Num (float_of_int d));
               ("fanout", Json.Num (float_of_int f));
               ("leaves", Json.Num (float_of_int leaves));
             ])
         hier_skipped)
  in
  let gc_json_of r =
    Json.Obj
      [
        ("minor_collections", Json.Num (float_of_int r.s_gc.gd_minor_collections));
        ("major_collections", Json.Num (float_of_int r.s_gc.gd_major_collections));
        ("promoted_words", Json.Num r.s_gc.gd_promoted_words);
        ("minor_words", Json.Num r.s_gc.gd_minor_words);
        ("major_words", Json.Num r.s_gc.gd_major_words);
        ( "promoted_words_per_pkt",
          Json.Num (r.s_gc.gd_promoted_words /. Float.max 1.0 r.s_pkts) );
      ]
  in
  let server_json =
    Json.Arr
      (List.map
         (fun r ->
           Json.Obj
             [
               ("burst_max", Json.Num (float_of_int r.s_burst));
               ("pkts_per_sec", Json.Num r.s_pkts_per_sec);
               ("minor_words_per_pkt", Json.Num r.s_minor_words_per_pkt);
               ("gc", gc_json_of r);
             ])
         server_rows)
  in
  (* collector pressure of the batched saturated-server run: the workload
     whose allocation profile the pooled plane targets *)
  let gc_section =
    match List.find_opt (fun r -> r.s_burst = server_batched_burst) server_rows with
    | Some r ->
      Json.Obj
        [
          ("workload", Json.Str "server_one_level_wf2q_plus_n4096_saturated");
          ("burst_max", Json.Num (float_of_int r.s_burst));
          ("pkts", Json.Num r.s_pkts);
          ("delta", gc_json_of r);
        ]
    | None -> Json.Null
  in
  let batched_headline =
    let find burst = List.find_opt (fun r -> r.s_burst = burst) server_rows in
    match (find 1, find server_batched_burst) with
    | Some per_pkt, Some batched ->
      Json.Obj
        [
          ("workload", Json.Str "server_one_level_wf2q_plus_n4096_saturated");
          ("burst_max", Json.Num (float_of_int server_batched_burst));
          ("per_packet_pkts_per_sec", Json.Num per_pkt.s_pkts_per_sec);
          ("batched_pkts_per_sec", Json.Num batched.s_pkts_per_sec);
          ("speedup", Json.Num (batched.s_pkts_per_sec /. per_pkt.s_pkts_per_sec));
        ]
    | _ -> Json.Null
  in
  let headline =
    match List.find_opt (fun r -> r.n = 4096) one_level_rows with
    | Some r ->
      Json.Obj
        [
          ("workload", Json.Str "one_level_wf2q_plus_n4096");
          ("pkts_per_sec", Json.Num (Option.value headline_pps ~default:r.pkts_per_sec));
          ("ns_per_select", Json.Num r.ns_per_select);
          ("minor_words_per_pkt", Json.Num r.minor_words_per_pkt);
        ]
    | None -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-hotpath-v1");
      ("bench", Json.Str "perf");
      ("quick", Json.Bool quick);
      ("headline", headline);
      ("batched_headline", batched_headline);
      ("gc", gc_section);
      ("one_level", one_level_json);
      ("server", server_json);
      ("hier", hier_json);
      ("hier_skipped", skipped_json);
    ]

let required_keys = [ "schema"; "one_level"; "hier" ]
let required_row_keys = [ "pkts_per_sec"; "ns_per_select"; "minor_words_per_pkt" ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "one_level" json with
    | Some rows ->
      (match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "one_level rows" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let run ?pool ?(quick = false) ?(out = "BENCH_hotpath.json") () =
  let factory = Hpfq.Disciplines.wf2q_plus in
  Printf.printf "\n================ PERF: hot-path throughput ================\n%!";
  let one_level_rows = one_level ?pool ~quick ~factory () in
  Printf.printf "%8s %16s %14s %12s\n" "N" "pkts/sec" "ns/select" "words/pkt";
  List.iter
    (fun r ->
      Printf.printf "%8d %16.0f %14.1f %12.2f\n" r.n r.pkts_per_sec r.ns_per_select
        r.minor_words_per_pkt)
    one_level_rows;
  let server_rows = server_rows ~quick () in
  Printf.printf "\n%10s %16s %12s   (server+simulator, N=4096 saturated)\n"
    "burst_max" "pkts/sec" "words/pkt";
  List.iter
    (fun r ->
      Printf.printf "%10d %16.0f %12.2f\n" r.s_burst r.s_pkts_per_sec
        r.s_minor_words_per_pkt)
    server_rows;
  let hier_done, hier_skipped = hier_rows ?pool ~quick ~factory () in
  Printf.printf "\n%6s %7s %7s %16s %12s\n" "depth" "fanout" "leaves" "pkts/sec" "words/pkt";
  List.iter
    (fun r ->
      Printf.printf "%6d %7d %7d %16.0f %12.2f\n" r.depth r.fanout r.leaves r.h_pkts_per_sec
        r.h_minor_words_per_pkt)
    hier_done;
  List.iter
    (fun (d, f, leaves) ->
      Printf.printf "%6d %7d %7d %16s (skipped: > %d leaves)\n" d f leaves "-"
        max_hier_leaves)
    hier_skipped;
  (* Committed headline pps must be measured the way perf-guard measures
     its fresh side (same probe, main domain, no bechamel residue) or the
     guard's tolerance band compares two different methodologies. Quick
     reports are never guard baselines, so they keep the row sample. *)
  let headline_pps = if quick then None else Some (headline ()) in
  (match headline_pps with
  | Some pps -> Printf.printf "\nheadline (guard probe) %16.0f pkts/sec\n" pps
  | None -> ());
  let json =
    json_of_run ~quick ~headline_pps ~one_level_rows ~server_rows ~hier_done
      ~hier_skipped
  in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith ("Perf.run: emitted JSON is missing keys: " ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out

(* -- perf-regression guard ------------------------------------------------ *)

let headline_of_report json =
  match Json.member "headline" json with
  | None -> Error "report has no \"headline\" object"
  | Some h ->
    (match Json.member "pkts_per_sec" h with
    | None -> Error "headline has no \"pkts_per_sec\" field"
    | Some v ->
      (match Json.to_float v with
      | Some f when f > 0.0 -> Ok f
      | _ -> Error "headline \"pkts_per_sec\" is not a positive number"))

(* Committed allocation ceiling: the headline's minor_words_per_pkt, when
   present. Absent in older baselines, in which case the words gate is
   vacuously satisfied. *)
let headline_words_of_report json =
  match Json.member "headline" json with
  | None -> None
  | Some h -> (
    match Json.member "minor_words_per_pkt" h with
    | None -> None
    | Some v -> (
      match Json.to_float v with Some w when w > 0.0 -> Some w | _ -> None))

type guard_result = {
  baseline_pps : float;
  fresh_pps : float;
  ratio : float;
  tol : float;
  baseline_words : float option;
  fresh_words : float;
  words_tol : float;
  words_within : bool;
  within : bool;
}

let default_guard_tol () =
  match Sys.getenv_opt "HPFQ_PERF_TOL" with
  | Some s -> (
    match float_of_string_opt s with
    | Some t when t > 0.0 -> t
    | _ -> 0.05)
  | None -> 0.05

let default_words_tol () =
  match Sys.getenv_opt "HPFQ_WORDS_TOL" with
  | Some s -> (
    match float_of_string_opt s with
    | Some t when t >= 0.0 -> t
    | _ -> 0.1)
  | None -> 0.1

let guard ?(baseline = "BENCH_hotpath.json") ?tol ?words_tol ?n ?iters ?runs () =
  let tol = match tol with Some t -> t | None -> default_guard_tol () in
  let words_tol =
    match words_tol with Some t -> t | None -> default_words_tol ()
  in
  if not (Sys.file_exists baseline) then
    Error (Printf.sprintf "baseline %s not found (run `bench perf` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json ->
        Result.map
          (fun pps -> (pps, headline_words_of_report json))
          (headline_of_report json)
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok (baseline_pps, baseline_words) ->
      let fresh_pps = headline ?n ?iters ?runs () in
      (* Allocation is deterministic per packet (unlike wall clock), so a
         single measurement at the headline shape suffices for the ceiling. *)
      let fresh_words =
        let n = Option.value n ~default:4096
        and iters = Option.value iters ~default:400_000 in
        let cycle = loaded_policy Hpfq.Disciplines.wf2q_plus n in
        let _, minor = time_loop cycle ~iters in
        minor /. float_of_int iters
      in
      let ratio = fresh_pps /. baseline_pps in
      let words_within =
        match baseline_words with
        | None -> true
        | Some b -> fresh_words <= b *. (1.0 +. words_tol)
      in
      Ok
        {
          baseline_pps;
          fresh_pps;
          ratio;
          tol;
          baseline_words;
          fresh_words;
          words_tol;
          words_within;
          within = ratio >= 1.0 -. tol && words_within;
        }
