(** Hot-path throughput benchmark backing `dune exec bench/main.exe -- perf`.

    Measures packets/second, ns per scheduling cycle and minor-heap words
    per packet for one-level WF²Q+ (N = 2⁴..2¹⁴) and end-to-end H-WF²Q+
    (uniform trees, depth × fan-out grid), then writes a machine-readable
    report so successive PRs can diff perf baselines. *)

val run : ?pool:Parallel.Pool.t -> ?quick:bool -> ?out:string -> unit -> unit
(** Run the benchmark and write the JSON report to [out]
    (default ["BENCH_hotpath.json"] in the invocation directory).
    [quick] shrinks sizes/iterations to smoke-test levels (used by
    [bench/check_bench.sh] and the test suite). [pool] fans the
    independent grid cells (per-N throughput rows, depth × fan-out hier
    runs) across domains — concurrent cells contend for the machine, so
    parallel numbers are comparable only with other runs at the same
    [-j]; committed baselines and {!guard} always measure sequentially.
    @raise Failure if the emitted report fails {!validate}. *)

val required_keys : string list
val required_row_keys : string list

val validate : Json.t -> (unit, string list) result
(** Check a parsed report for the required top-level and per-row keys. *)

val headline : ?n:int -> ?iters:int -> ?runs:int -> unit -> float
(** Best one-level WF²Q+ packets/second at [n] sessions (default 4096)
    over [runs] measurements (default 9 × 1M iterations) — machine
    interference only slows samples, so best-of-N is the stable min-time
    estimator for back-to-back comparison of builds on the same machine.
    Both the report's [headline.pkts_per_sec] and {!guard}'s fresh side are
    measured with this probe, so the guard compares like with like; the
    per-N table rows use shorter single samples and read systematically
    faster. *)

val loaded_policy_with :
  Sched.Sched_intf.factory -> int -> Sched.Sched_intf.t * (unit -> unit)
(** A policy instance with [n] perpetually backlogged unit-packet sessions
    plus a closure running one full scheduling cycle
    (select + arrive + requeue) per call. The policy is returned alongside
    the cycle so callers can install an observer on it — the tracing-overhead
    bench measures the same loop with and without one. *)

val loaded_policy : Sched.Sched_intf.factory -> int -> unit -> unit
(** [snd (loaded_policy_with factory n)]. *)

val time_loop : (unit -> unit) -> iters:int -> float * float
(** Warm the closure (up to 1000 calls), then run it [iters] times:
    [(wall seconds, minor-heap words allocated)]. *)

(** [Gc.quick_stat] deltas captured over a measured run — the collector
    pressure the pooled packet plane removes. Reported per server row and
    as the report's top-level ["gc"] section. *)
type gc_delta = {
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_promoted_words : float;
  gd_minor_words : float;
  gd_major_words : float;
}

val server_throughput :
  ?config:Engine.Simulator.config ->
  n:int ->
  burst_max:int ->
  target_pkts:int ->
  unit ->
  float * float * gc_delta * float
(** Saturated one-level throughput through the full Server + Simulator
    event loop: [n] unit-packet sessions fed by pre-scheduled arrival
    ticks ({!server_batched_burst} packets per tick, exactly the link
    rate), run to a horizon of [target_pkts] departures at link rate 1.
    Returns [(packets/second, minor words/packet, GC deltas, packets)].
    Unlike
    {!loaded_policy}'s bare policy cycle, this pays event-set cost per
    packet — per-event arrivals plus a departure re-arm at
    [burst_max = 1]; one grouped arrival event per tick plus inline
    burst-drained departures above it — which is what batching amortizes.
    Departure times are bit-identical at every [burst_max]; the report's
    [batched_headline] compares [burst_max = 1] against
    {!server_batched_burst}. *)

val server_batched_burst : int
(** Burst cap used for the batched side of [batched_headline] (64). *)

val hier_throughput_spec :
  ?config:Engine.Simulator.config ->
  ?engine:Hpfq.Hier_engine.choice ->
  spec:Hpfq.Class_tree.t ->
  factory:Sched.Sched_intf.factory ->
  pkt_bits:float ->
  target_pkts:int ->
  unit ->
  float * float * float
(** Saturated steady-state throughput of one hierarchy: every leaf is kept
    at a two-packet backlog (prime with two, re-inject on depart) and the
    simulation runs for a horizon sized to [target_pkts] departures at the
    root rate. Returns [(leaf count, packets/second, minor words/packet)].
    [engine] picks the hierarchy engine (default [`Auto]) — the hier bench
    A/Bs [`Generic] against [`Flat] with this function. *)

val uniform_spec : depth:int -> fanout:int -> name:string -> rate:float -> Hpfq.Class_tree.t
(** The balanced tree the depth × fan-out grids run on ([depth] 0 = leaf;
    children split the parent rate evenly). *)

val headline_of_report : Json.t -> (float, string) result
(** Extract [headline.pkts_per_sec] from a parsed perf report. *)

val headline_words_of_report : Json.t -> float option
(** Extract [headline.minor_words_per_pkt] when the report carries it
    (reports written before the allocation tier do not). *)

type guard_result = {
  baseline_pps : float;  (** headline recorded in the baseline file *)
  fresh_pps : float;  (** headline measured just now *)
  ratio : float;  (** [fresh_pps /. baseline_pps] *)
  tol : float;  (** relative slowdown tolerated *)
  baseline_words : float option;
      (** committed headline minor words/packet, when present *)
  fresh_words : float;  (** minor words/packet measured just now *)
  words_tol : float;  (** relative allocation growth tolerated *)
  words_within : bool;
      (** [fresh_words <= baseline_words * (1 + words_tol)] (vacuous when
          the baseline has no words key) *)
  within : bool;  (** [ratio >= 1 - tol && words_within] *)
}

val guard :
  ?baseline:string ->
  ?tol:float ->
  ?words_tol:float ->
  ?n:int ->
  ?iters:int ->
  ?runs:int ->
  unit ->
  (guard_result, string) result
(** Perf-regression gate: measure a fresh {!headline} (with tracing
    disabled — no observer is ever installed) and compare it against the
    [headline.pkts_per_sec] recorded in [baseline] (default
    ["BENCH_hotpath.json"]). [tol] defaults to the [HPFQ_PERF_TOL]
    environment variable, or 0.05 — the observability layer must not cost
    the untraced hot path more than 5%. The committed
    [headline.minor_words_per_pkt] is additionally a hard allocation
    ceiling: the fresh measurement may not exceed it by more than
    [words_tol] ([HPFQ_WORDS_TOL], default 0.1 — allocation is
    deterministic, so the band only absorbs ring-growth amortisation
    noise). [Error] means the baseline is missing or unreadable, not a
    perf failure. *)
