(** Hot-path throughput benchmark backing `dune exec bench/main.exe -- perf`.

    Measures packets/second, ns per scheduling cycle and minor-heap words
    per packet for one-level WF²Q+ (N = 2⁴..2¹⁴) and end-to-end H-WF²Q+
    (uniform trees, depth × fan-out grid), then writes a machine-readable
    report so successive PRs can diff perf baselines. *)

val run : ?quick:bool -> ?out:string -> unit -> unit
(** Run the benchmark and write the JSON report to [out]
    (default ["BENCH_hotpath.json"] in the invocation directory).
    [quick] shrinks sizes/iterations to smoke-test levels (used by
    [bench/check_bench.sh] and the test suite).
    @raise Failure if the emitted report fails {!validate}. *)

val required_keys : string list
val required_row_keys : string list

val validate : Json.t -> (unit, string list) result
(** Check a parsed report for the required top-level and per-row keys. *)

val headline : ?n:int -> ?iters:int -> ?runs:int -> unit -> float
(** Median one-level WF²Q+ packets/second at [n] sessions (default 4096)
    over [runs] measurements — a stable single number for back-to-back
    comparison of two builds on the same machine. *)
