(** Minimal JSON tree with an emitter and a strict parser.

    Used by the perf harness to write [BENCH_*.json] and by the smoke test
    to read the file back and assert required keys, avoiding an external
    JSON dependency. Numbers are floats; NaN/infinite values emit as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
val to_file : ?indent:int -> string -> t -> unit

val to_string_compact : t -> string
(** Single-line form (no newlines, no padding) — one JSON-lines record. *)

val to_buffer_compact : Buffer.t -> t -> unit
(** Same, appended to an existing buffer (no trailing newline). *)

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input (including trailing garbage). *)

val of_file : string -> t

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and absent keys. *)

val to_list : t -> t list option
val to_float : t -> float option
