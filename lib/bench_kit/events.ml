(* Event-set churn benchmark (bench id "events").

   The paper's evaluation runs on a NETSIM-derived discrete event
   simulator under timer-heavy workloads — TCP retransmit-timer churn,
   on/off sources — so the pending-event set is the simulator's hottest
   structure after the scheduler itself. This suite A/Bs the two
   Event_set backends (slot heap vs calendar queue) on a classic "hold
   model": [n] self-perpetuating timers, each fire rescheduling itself
   with an increment drawn from one of four distributions:

   - uniform:       U(0, 2T) — the textbook steady-state hold model;
   - bursty:        90% short U(0, 0.2T), 10% long (1..19)T — clumped
                    arrivals, uneven bucket occupancy;
   - cancel-heavy:  uniform increments, but every fire also cancels and
                    re-arms one random other timer — TCP retransmit-timer
                    reset churn (one effective cancel per fire);
   - wide-horizon:  99% U(0, 2T), 1% up to 2000T — a heavy far-future
                    tail, the calendar queue's known adversary.

   Every run reports events/second through the full simulator loop
   (schedule + fire, plus cancel + re-arm for cancel-heavy) and GC minor
   words per event; timer actions are pre-allocated so the loop itself
   allocates nothing and the words/event column is a pure backend
   comparison. Results go to BENCH_events.json (same machine-readable
   role as BENCH_hotpath.json) with per-workload calendar/heap ratios and
   a cancel-heavy 64k-timer headline; [guard] re-measures the headline
   against the committed file, mirroring Perf.guard. *)

module Sim = Engine.Simulator

type dist = Uniform | Bursty | Cancel_heavy | Wide_horizon

let dist_name = function
  | Uniform -> "uniform"
  | Bursty -> "bursty"
  | Cancel_heavy -> "cancel_heavy"
  | Wide_horizon -> "wide_horizon"

let all_dists = [ Uniform; Bursty; Cancel_heavy; Wide_horizon ]

type row = {
  dist : dist;
  n : int; (* steady-state pending timers *)
  row_backend : Sim.backend;
  events_per_sec : float;
  minor_words_per_event : float;
  fired : int;
  cancelled : int;
  compactions : int;
  resizes : int;
}

(* One churn run: prime [n] timers, then let each fire re-arm itself until
   the fire budget is spent; the final generation drains un-rearmed.
   Deterministic per (dist, n): the PRNG seed ignores the backend, so both
   backends replay the same increment stream. *)
let run_churn ~backend ~dist ~n ~events =
  let sim = Sim.create ~backend () in
  let rng = Random.State.make [| 0xCA1E17; Hashtbl.hash (dist_name dist); n |] in
  let mean = 1.0 in
  let draw () =
    match dist with
    | Uniform | Cancel_heavy -> Random.State.float rng (2.0 *. mean)
    | Bursty ->
      if Random.State.float rng 1.0 < 0.9 then Random.State.float rng (0.2 *. mean)
      else mean *. (1.0 +. Random.State.float rng 18.0)
    | Wide_horizon ->
      if Random.State.float rng 1.0 < 0.99 then Random.State.float rng (2.0 *. mean)
      else mean *. Random.State.float rng 2000.0
  in
  let ids = Array.make n Sim.stale_id in
  let have_id = Array.make n false in
  let actions = Array.make n ignore in
  let remaining = ref events in
  let cancelled = ref 0 in
  let arm i =
    ids.(i) <- Sim.schedule_after sim ~delay:(draw ()) actions.(i);
    have_id.(i) <- true
  in
  for i = 0 to n - 1 do
    actions.(i) <-
      (fun () ->
        if !remaining > 0 then begin
          decr remaining;
          arm i;
          match dist with
          | Cancel_heavy ->
            (* retransmit-timer reset: kill one random pending timer and
               re-arm it. [ids.(j)] always names j's latest armed event,
               which is pending (even when j = i: just re-armed above), so
               every cancel is effective. *)
            let j = Random.State.int rng n in
            if have_id.(j) then begin
              Sim.cancel sim ids.(j);
              incr cancelled;
              arm j
            end
          | Uniform | Bursty | Wide_horizon -> ()
        end
        else have_id.(i) <- false)
  done;
  for i = 0 to n - 1 do
    arm i
  done;
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.run sim;
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. m0 in
  let fired = Sim.events_processed sim in
  let st = Sim.stats sim in
  {
    dist;
    n;
    row_backend = backend;
    events_per_sec = float_of_int fired /. wall;
    minor_words_per_event = minor /. float_of_int (max 1 fired);
    fired;
    cancelled = !cancelled;
    compactions = st.Sim.compactions;
    resizes = st.Sim.resizes;
  }

let headline_dist = Cancel_heavy
let headline_n = 65536

let sizes ~quick = if quick then [ 256 ] else [ 1024; 16384; 65536 ]
let budget ~quick n = if quick then 4_000 else max 200_000 (4 * n)

(* -- JSON report --------------------------------------------------------- *)

let row_json r =
  Json.Obj
    [
      ("dist", Json.Str (dist_name r.dist));
      ("n", Json.Num (float_of_int r.n));
      ("backend", Json.Str (Sim.backend_name r.row_backend));
      ("events_per_sec", Json.Num r.events_per_sec);
      ("minor_words_per_event", Json.Num r.minor_words_per_event);
      ("fired", Json.Num (float_of_int r.fired));
      ("cancelled", Json.Num (float_of_int r.cancelled));
      ("compactions", Json.Num (float_of_int r.compactions));
      ("resizes", Json.Num (float_of_int r.resizes));
    ]

let find_row rows ~dist ~n ~backend =
  List.find_opt
    (fun r -> r.dist = dist && r.n = n && r.row_backend = backend)
    rows

let ratios rows =
  List.filter_map
    (fun (dist, n) ->
      match
        ( find_row rows ~dist ~n ~backend:Sim.Calendar,
          find_row rows ~dist ~n ~backend:Sim.Slot_heap )
      with
      | Some c, Some h ->
        Some (dist, n, c.events_per_sec /. h.events_per_sec)
      | _ -> None)
    (List.sort_uniq compare (List.map (fun r -> (r.dist, r.n)) rows))

let json_of_run ~quick rows =
  let headline =
    match
      ( find_row rows ~dist:headline_dist ~n:headline_n ~backend:Sim.Calendar,
        find_row rows ~dist:headline_dist ~n:headline_n ~backend:Sim.Slot_heap )
    with
    | Some c, Some h ->
      Json.Obj
        [
          ("workload", Json.Str "cancel_heavy_n65536");
          ("calendar_events_per_sec", Json.Num c.events_per_sec);
          ("heap_events_per_sec", Json.Num h.events_per_sec);
          ("ratio", Json.Num (c.events_per_sec /. h.events_per_sec));
        ]
    | _ -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-events-v1");
      ("bench", Json.Str "events");
      ("quick", Json.Bool quick);
      ("headline", headline);
      ("rows", Json.Arr (List.map row_json rows));
      ( "ratios",
        Json.Arr
          (List.map
             (fun (dist, n, ratio) ->
               Json.Obj
                 [
                   ("dist", Json.Str (dist_name dist));
                   ("n", Json.Num (float_of_int n));
                   ("calendar_over_heap", Json.Num ratio);
                 ])
             (ratios rows)) );
    ]

let required_keys = [ "schema"; "rows"; "ratios" ]

let required_row_keys =
  [ "dist"; "n"; "backend"; "events_per_sec"; "minor_words_per_event" ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "rows" json with
    | Some rows -> (
      match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "rows entries" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let run ?pool ?(quick = false) ?(out = "BENCH_events.json") () =
  Printf.printf
    "\n================ EVENTS: pending-set churn, heap vs calendar \
     ================\n%!";
  (* dist × n × backend cells are independent (each builds its own
     simulator with an explicit backend and a cell-keyed PRNG); fanning
     them out carries the usual contention caveat — parallel numbers are
     only comparable at the same -j, guards measure sequentially *)
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let grid =
    List.concat_map
      (fun dist ->
        List.concat_map
          (fun n ->
            let events = budget ~quick n in
            List.map
              (fun backend -> (backend, dist, n, events))
              [ Sim.Slot_heap; Sim.Calendar ])
          (sizes ~quick))
      all_dists
  in
  let rows =
    Parallel.Pool.map_list pool
      ~f:(fun (backend, dist, n, events) -> run_churn ~backend ~dist ~n ~events)
      grid
  in
  Printf.printf "%-14s %8s %10s %16s %12s %8s %8s\n" "dist" "n" "backend"
    "events/sec" "words/event" "compact" "resize";
  List.iter
    (fun r ->
      Printf.printf "%-14s %8d %10s %16.0f %12.3f %8d %8d\n" (dist_name r.dist)
        r.n
        (Sim.backend_name r.row_backend)
        r.events_per_sec r.minor_words_per_event r.compactions r.resizes)
    rows;
  Printf.printf "\n%-14s %8s %22s\n" "dist" "n" "calendar/heap speedup";
  List.iter
    (fun (dist, n, ratio) ->
      Printf.printf "%-14s %8d %22.2fx\n" (dist_name dist) n ratio)
    (ratios rows);
  let json = json_of_run ~quick rows in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith ("Events.run: emitted JSON is missing keys: " ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out;
  rows

(* -- regression guard ------------------------------------------------------ *)

let headline_of_report json =
  match Json.member "headline" json with
  | None -> Error "report has no \"headline\" object"
  | Some h -> (
    match Json.member "calendar_events_per_sec" h with
    | None -> Error "headline has no \"calendar_events_per_sec\" field"
    | Some v -> (
      match Json.to_float v with
      | Some f when f > 0.0 -> Ok f
      | _ -> Error "headline \"calendar_events_per_sec\" is not a positive number"))

type guard_result = {
  baseline_eps : float;
  fresh_eps : float;
  perf_ratio : float;
  speedup : float; (* fresh calendar / fresh heap on the headline workload *)
  tol : float;
  min_speedup : float;
  within : bool;
}

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match float_of_string_opt s with Some t when t >= 0.0 -> t | _ -> default)
  | None -> default

(* Timer churn is noisier than the policy-cycle headline, so the default
   tolerance is looser than Perf.guard's 5%. HPFQ_EVENTS_RATIO is the
   floor on the fresh calendar/heap speedup (default 1.0: the calendar
   must at least not lose; the committed baseline documents the real
   margin, CI relaxes both knobs). *)
let guard ?(baseline = "BENCH_events.json") ?tol ?min_speedup ?n ?events () =
  let tol = match tol with Some t -> t | None -> env_float "HPFQ_EVENTS_TOL" 0.2 in
  let min_speedup =
    match min_speedup with
    | Some r -> r
    | None -> env_float "HPFQ_EVENTS_RATIO" 1.0
  in
  if not (Sys.file_exists baseline) then
    Error (Printf.sprintf "baseline %s not found (run `bench events` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json -> headline_of_report json
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok baseline_eps ->
      let n = match n with Some n -> n | None -> headline_n in
      let events = match events with Some e -> e | None -> budget ~quick:false n in
      let cal = run_churn ~backend:Sim.Calendar ~dist:headline_dist ~n ~events in
      let heap = run_churn ~backend:Sim.Slot_heap ~dist:headline_dist ~n ~events in
      let fresh_eps = cal.events_per_sec in
      let speedup = cal.events_per_sec /. heap.events_per_sec in
      Ok
        {
          baseline_eps;
          fresh_eps;
          perf_ratio = fresh_eps /. baseline_eps;
          speedup;
          tol;
          min_speedup;
          within = fresh_eps /. baseline_eps >= 1.0 -. tol && speedup >= min_speedup;
        }
