(* Minimal JSON tree, emitter and parser — just enough for the benchmark
   harness to write `BENCH_*.json` files and for the smoke test to read
   them back and assert required keys, without pulling in a JSON
   dependency the container may not have. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* -- emit ---------------------------------------------------------------- *)

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec emit b ~indent ~level v =
  let pad n = String.make (n * indent) ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Num x ->
    if not (Float.is_finite x) then Buffer.add_string b "null"
    else Buffer.add_string b (number_to_string x)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape_string s);
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (level + 1));
        emit b ~indent ~level:(level + 1) x)
      xs;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad level);
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (level + 1));
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\": ";
        emit b ~indent ~level:(level + 1) x)
      fields;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad level);
    Buffer.add_char b '}'

(* Single-line emission for JSON-lines streams: no newlines anywhere, one
   value per call. Writes into the caller's buffer so a trace exporter can
   reuse one scratch buffer across millions of events. *)
let rec emit_compact b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Num x ->
    if not (Float.is_finite x) then Buffer.add_string b "null"
    else Buffer.add_string b (number_to_string x)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape_string s);
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit_compact b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\":";
        emit_compact b x)
      fields;
    Buffer.add_char b '}'

let to_buffer_compact b v = emit_compact b v

let to_string_compact v =
  let b = Buffer.create 256 in
  emit_compact b v;
  Buffer.contents b

let to_string ?(indent = 2) v =
  let b = Buffer.create 4096 in
  emit b ~indent ~level:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file ?indent path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?indent v))

(* -- parse --------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let expect_lit c lit v =
  if
    c.pos + String.length lit <= String.length c.src
    && String.sub c.src c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    v
  end
  else fail c (Printf.sprintf "expected %S" lit)

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents b
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some 'n' -> Buffer.add_char b '\n'
      | Some 't' -> Buffer.add_char b '\t'
      | Some 'r' -> Buffer.add_char b '\r'
      | Some ('"' | '\\' | '/') -> Buffer.add_char b (Option.get (peek c))
      | Some 'u' ->
        (* keep it simple: decode BMP escapes as a raw byte when < 256 *)
        if c.pos + 4 >= String.length c.src then fail c "bad \\u escape";
        let hex = String.sub c.src (c.pos + 1) 4 in
        let code = int_of_string ("0x" ^ hex) in
        if code < 256 then Buffer.add_char b (Char.chr code)
        else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
        c.pos <- c.pos + 4
      | _ -> fail c "bad escape");
      advance c;
      go ()
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  if c.pos = start then fail c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some x -> x
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail c "expected ',' or '}'"
      in
      fields []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
        | _ -> fail c "expected ',' or ']'"
      in
      elems []
    end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* -- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_float = function Num x -> Some x | _ -> None
