(** Event-set churn benchmark backing `dune exec bench/main.exe -- events`.

    A/Bs the simulator's pending-set backends (slot heap vs calendar
    queue) on hold-model timer workloads — uniform, bursty, cancel-heavy
    (TCP retransmit-timer reset churn) and wide-horizon increment
    distributions — at steady-state populations up to 64k pending timers,
    then writes a machine-readable report (BENCH_events.json) with
    per-workload calendar/heap speedups and a cancel-heavy 64k headline. *)

type dist = Uniform | Bursty | Cancel_heavy | Wide_horizon

val dist_name : dist -> string
val all_dists : dist list

type row = {
  dist : dist;
  n : int;  (** steady-state pending timers *)
  row_backend : Engine.Simulator.backend;
  events_per_sec : float;
  minor_words_per_event : float;  (** GC minor words per fired event *)
  fired : int;
  cancelled : int;  (** effective cancels issued by the workload *)
  compactions : int;  (** from [Simulator.stats] at the end of the run *)
  resizes : int;
}

val run_churn :
  backend:Engine.Simulator.backend -> dist:dist -> n:int -> events:int -> row
(** One deterministic churn run: [n] self-perpetuating timers re-arming
    until [events] fires are spent, then draining. The PRNG seed depends
    only on [(dist, n)], so both backends replay the same increments. *)

val run : ?pool:Parallel.Pool.t -> ?quick:bool -> ?out:string -> unit -> row list
(** Run the full grid (4 distributions x sizes x both backends), print a
    table plus speedups, and write the JSON report to [out] (default
    ["BENCH_events.json"]). [quick] shrinks sizes/budgets to smoke-test
    levels. [pool] fans the grid cells across domains (concurrent cells
    contend, so parallel numbers are only comparable at the same [-j];
    baselines and {!guard} measure sequentially).
    @raise Failure if the emitted report fails {!validate}. *)

val required_keys : string list
val required_row_keys : string list

val validate : Json.t -> (unit, string list) result

val headline_of_report : Json.t -> (float, string) result
(** Extract [headline.calendar_events_per_sec] from a parsed report. *)

type guard_result = {
  baseline_eps : float;  (** headline recorded in the baseline file *)
  fresh_eps : float;  (** calendar headline measured just now *)
  perf_ratio : float;  (** [fresh_eps /. baseline_eps] *)
  speedup : float;  (** fresh calendar/heap ratio on the headline workload *)
  tol : float;  (** relative slowdown tolerated vs the baseline *)
  min_speedup : float;  (** floor on [speedup] *)
  within : bool;
      (** [perf_ratio >= 1 - tol && speedup >= min_speedup] *)
}

val guard :
  ?baseline:string ->
  ?tol:float ->
  ?min_speedup:float ->
  ?n:int ->
  ?events:int ->
  unit ->
  (guard_result, string) result
(** Regression gate, mirroring [Perf.guard]: re-measure the cancel-heavy
    headline on both backends and compare the calendar number against the
    committed [baseline] (default ["BENCH_events.json"]). [tol] defaults
    to [HPFQ_EVENTS_TOL] or 0.2; [min_speedup] to [HPFQ_EVENTS_RATIO] or
    1.0. [Error] means the baseline is missing or unreadable, not a perf
    failure. *)
