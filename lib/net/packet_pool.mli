(** Struct-of-arrays packet arena with generation-tagged int handles.

    The zero-allocation packet plane: packets live as parallel flat-array
    cells, named by immediate-int handles (slot in the low 31 bits,
    allocation generation above — the [Sched.Session_handle] encoding).
    Engines move handles; a boxed {!Packet.t} is materialised only at API
    boundaries via {!to_packet}, with [uid] = the handle itself.

    A pool is single-domain: alloc/free must stay on one Domain (sharded
    engines confine them to the coordinator and hand workers read-only
    access to live handles across a fork/join barrier). *)

type t

type handle = int
(** Immediate int. Never negative; {!none} is the sentinel. *)

val none : handle
(** [-1]: never returned by {!alloc}. *)

val create : ?initial_capacity:int -> unit -> t
(** Arena that grows by doubling when full (default initial capacity 64). *)

val alloc :
  ?mark:int -> t -> flow:int -> seq:int -> size_bits:float -> arrival:float -> handle
(** O(1) via the freelist; grows the arena when no slot is free.
    @raise Invalid_argument if [size_bits <= 0]. *)

val free : t -> handle -> unit
(** Recycle the slot and bump its generation, invalidating [handle].
    @raise Invalid_argument on a stale handle or double free. *)

val flow : t -> handle -> int
val seq : t -> handle -> int
val mark : t -> handle -> int
val size_bits : t -> handle -> float
val arrival : t -> handle -> float
(** Field reads; each validates the generation tag.
    @raise Invalid_argument on a stale handle. *)

val live : t -> handle -> bool
(** Is [handle]'s slot still the allocation that produced it? *)

val to_packet : t -> handle -> Packet.t
(** Boundary materialisation (allocates the box); [uid] = [handle],
    unique within the pool across a run (generations make recycled slots
    yield fresh handles). *)

val slot_of : handle -> int
val generation_of : handle -> int

val live_count : t -> int
val capacity : t -> int
