(** Packets as seen by the schedulers.

    A packet is pure data: the scheduler never inspects payloads, only the
    flow it belongs to and its length in bits. [uid] is globally unique and
    provides a stable identity for traces and tests; [seq] is the 1-based
    index within its flow (the paper's superscript k in p_i^k). *)

type t = {
  uid : int;
  flow : int;            (** leaf/session index the packet belongs to *)
  seq : int;             (** k-th packet of its flow, starting at 1 *)
  size_bits : float;     (** length L_i^k in bits *)
  arrival : float;       (** a_i^k, seconds *)
  mark : int;            (** free-form tag (e.g. TCP segment number); 0 if unused *)
}

val make : ?mark:int -> flow:int -> seq:int -> size_bits:float -> arrival:float -> unit -> t
(** Allocates a fresh [uid]. *)

val reset_uid_counter : unit -> unit
(** Tests only: make uid sequences reproducible within a test case. *)

val pp : Format.formatter -> t -> unit
