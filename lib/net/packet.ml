type t = {
  uid : int;
  flow : int;
  seq : int;
  size_bits : float;
  arrival : float;
  mark : int;
}

(* Atomic: [make] is callable from worker Domains (Shard.Subtree staged
   the old [int ref] from workers, racing uid assignment). The pooled
   packet plane sidesteps this counter entirely — pool handles carry
   their own identity — but direct [make] users (fluid reference systems,
   tests) still need unique uids under parallelism. *)
let counter = Atomic.make 0

let make ?(mark = 0) ~flow ~seq ~size_bits ~arrival () =
  if size_bits <= 0.0 then invalid_arg "Packet.make: size must be positive";
  { uid = 1 + Atomic.fetch_and_add counter 1; flow; seq; size_bits; arrival; mark }

let reset_uid_counter () = Atomic.set counter 0

let pp fmt p =
  Format.fprintf fmt "p_%d^%d(%gb@@%g)" p.flow p.seq p.size_bits p.arrival
