type t = {
  uid : int;
  flow : int;
  seq : int;
  size_bits : float;
  arrival : float;
  mark : int;
}

let counter = ref 0

let make ?(mark = 0) ~flow ~seq ~size_bits ~arrival () =
  if size_bits <= 0.0 then invalid_arg "Packet.make: size must be positive";
  incr counter;
  { uid = !counter; flow; seq; size_bits; arrival; mark }

let reset_uid_counter () = counter := 0

let pp fmt p =
  Format.fprintf fmt "p_%d^%d(%gb@@%g)" p.flow p.seq p.size_bits p.arrival
