(* Struct-of-arrays packet arena. A pooled packet is five flat-array cells
   (flow/seq/mark ints, size_bits/arrival floats) named by an int handle
   that packs the slot in its low 31 bits and the slot's allocation
   generation above it — the same encoding as [Sched.Session_handle] over
   its session arena. Handles are immediate ints: storing one in a FIFO
   ring, passing one through an engine, or comparing two allocates
   nothing. A boxed [Packet.t] is materialised only at API boundaries
   ([to_packet]), with [uid] = the handle itself, which is unique within a
   pool for the lifetime of a run (every [free] bumps the slot's
   generation, so a recycled slot yields a different handle; wrap-around
   needs 2^31 recycles of one slot).

   Thread-safety: a pool is single-domain. Engines that shard across
   Domains ([Shard.Subtree]) confine alloc/free to the coordinator and let
   workers only read pooled fields of live handles, with the fork/join
   barrier as the happens-before edge. *)

type handle = int

let slot_bits = 31
let slot_mask = (1 lsl slot_bits) - 1
let gen_mask = (1 lsl slot_bits) - 1

(* never produced by packing (slot and masked gen are non-negative) *)
let none : handle = -1

type t = {
  mutable flow : int array;
  mutable seq : int array;
  mutable mark : int array;
  mutable gen : int array;        (* current generation per slot *)
  mutable size_bits : float array;
  mutable arrival : float array;
  mutable next_free : int array;  (* freelist chaining; -1 terminates *)
  mutable free_head : int;        (* -1 = no free slot: next alloc grows *)
  mutable capacity : int;
  mutable live : int;
}

let create ?(initial_capacity = 64) () =
  if initial_capacity < 1 then
    invalid_arg "Packet_pool.create: capacity must be >= 1";
  let cap = initial_capacity in
  let next_free = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    flow = Array.make cap 0;
    seq = Array.make cap 0;
    mark = Array.make cap 0;
    gen = Array.make cap 0;
    size_bits = Array.make cap 0.0;
    arrival = Array.make cap 0.0;
    next_free;
    free_head = 0;
    capacity = cap;
    live = 0;
  }

let grow t =
  let old = t.capacity in
  let cap = 2 * old in
  if cap > slot_mask then failwith "Packet_pool: arena exhausted";
  let extend_i a = Array.append a (Array.make old 0) in
  let extend_f a = Array.append a (Array.make old 0.0) in
  t.flow <- extend_i t.flow;
  t.seq <- extend_i t.seq;
  t.mark <- extend_i t.mark;
  t.gen <- extend_i t.gen;
  t.size_bits <- extend_f t.size_bits;
  t.arrival <- extend_f t.arrival;
  let nf = Array.make cap (-1) in
  Array.blit t.next_free 0 nf 0 old;
  for i = old to cap - 2 do
    nf.(i) <- i + 1
  done;
  t.next_free <- nf;
  t.free_head <- old;
  t.capacity <- cap

let alloc ?(mark = 0) t ~flow ~seq ~size_bits ~arrival =
  if size_bits <= 0.0 then
    invalid_arg "Packet_pool.alloc: size must be positive";
  if t.free_head < 0 then grow t;
  let slot = t.free_head in
  t.free_head <- t.next_free.(slot);
  t.next_free.(slot) <- -2; (* not on the freelist: double-free detector *)
  t.flow.(slot) <- flow;
  t.seq.(slot) <- seq;
  t.mark.(slot) <- mark;
  t.size_bits.(slot) <- size_bits;
  t.arrival.(slot) <- arrival;
  t.live <- t.live + 1;
  slot lor (t.gen.(slot) lsl slot_bits)

let[@inline] slot_of h = h land slot_mask
let[@inline] generation_of h = (h lsr slot_bits) land gen_mask

let stale () = invalid_arg "Packet_pool: stale handle"

let[@inline] check t h =
  let s = h land slot_mask in
  if h < 0 || s >= t.capacity || t.gen.(s) <> (h lsr slot_bits) land gen_mask
  then stale ();
  s

let[@inline] live t h =
  h >= 0
  && h land slot_mask < t.capacity
  && t.gen.(h land slot_mask) = (h lsr slot_bits) land gen_mask
  && t.next_free.(h land slot_mask) = -2

let[@inline] flow t h = t.flow.(check t h)
let[@inline] seq t h = t.seq.(check t h)
let[@inline] mark t h = t.mark.(check t h)
let[@inline] size_bits t h = t.size_bits.(check t h)
let[@inline] arrival t h = t.arrival.(check t h)

let free t h =
  let s = check t h in
  if t.next_free.(s) <> -2 then invalid_arg "Packet_pool.free: double free";
  t.gen.(s) <- (t.gen.(s) + 1) land gen_mask;
  t.next_free.(s) <- t.free_head;
  t.free_head <- s;
  t.live <- t.live - 1

(* Boundary materialisation: build the boxed view for observers, trace
   sinks and user hooks. [uid] is the handle — stable for the packet's
   lifetime and unique within the pool across a run. *)
let to_packet t h =
  let s = check t h in
  {
    Packet.uid = h;
    flow = t.flow.(s);
    seq = t.seq.(s);
    size_bits = t.size_bits.(s);
    arrival = t.arrival.(s);
    mark = t.mark.(s);
  }

let live_count t = t.live
let capacity t = t.capacity
