type t = {
  q : Packet.t Queue.t;
  capacity_bits : float;
  mutable bits : float;
  mutable drops : int;
}

let create ?(capacity_bits = infinity) () =
  if capacity_bits <= 0.0 then invalid_arg "Fifo.create: capacity must be positive";
  { q = Queue.create (); capacity_bits; bits = 0.0; drops = 0 }

let push t p =
  if t.bits +. p.Packet.size_bits > t.capacity_bits then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    Queue.push p t.q;
    t.bits <- t.bits +. p.Packet.size_bits;
    true
  end

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some p ->
    t.bits <- t.bits -. p.Packet.size_bits;
    if Queue.is_empty t.q then t.bits <- 0.0;
    Some p

let peek t = Queue.peek_opt t.q
let peek_exn t = Queue.peek t.q

let drop_head t =
  let p = Queue.pop t.q in
  t.bits <- t.bits -. p.Packet.size_bits;
  if Queue.is_empty t.q then t.bits <- 0.0
let length t = Queue.length t.q
let bits t = t.bits
let is_empty t = Queue.is_empty t.q
let drops t = t.drops

let clear t =
  Queue.clear t.q;
  t.bits <- 0.0
