(* Growable intrusive ring of pool handles. The queue owns no boxes: each
   element is an immediate int naming a [Packet_pool] cell, so push/pop
   touch only the int ring and the 1-element float accumulator. Capacity
   is a power of two (index masking); the ring doubles when full. [bits]
   accounting reads sizes from the pool, and — exactly like the boxed
   queue it replaces — snaps to 0.0 whenever the queue empties so float
   cancellation error cannot accumulate across busy periods. *)

type t = {
  pool : Packet_pool.t;
  mutable buf : int array;
  mutable head : int; (* index of the front element *)
  mutable len : int;
  mutable mask : int; (* ring capacity - 1 (power of two) *)
  capacity_bits : float;
  bits : float array; (* 1-element: a mutable float field here would box *)
  mutable drops : int;
}

let initial_ring = 8

let create ?(capacity_bits = infinity) ~pool () =
  if capacity_bits <= 0.0 then invalid_arg "Fifo.create: capacity must be positive";
  {
    pool;
    buf = Array.make initial_ring Packet_pool.none;
    head = 0;
    len = 0;
    mask = initial_ring - 1;
    capacity_bits;
    bits = [| 0.0 |];
    drops = 0;
  }

let pool t = t.pool

let grow t =
  let old_cap = t.mask + 1 in
  let cap = 2 * old_cap in
  let buf = Array.make cap Packet_pool.none in
  (* unroll the ring so the front lands at index 0 *)
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) land t.mask)
  done;
  t.buf <- buf;
  t.head <- 0;
  t.mask <- cap - 1

let push t h =
  let sz = Packet_pool.size_bits t.pool h in
  if t.bits.(0) +. sz > t.capacity_bits then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    if t.len > t.mask then grow t;
    t.buf.((t.head + t.len) land t.mask) <- h;
    t.len <- t.len + 1;
    t.bits.(0) <- t.bits.(0) +. sz;
    true
  end

let[@inline] peek_exn t =
  if t.len = 0 then raise Queue.Empty;
  t.buf.(t.head)

let pop_exn t =
  if t.len = 0 then raise Queue.Empty;
  let h = t.buf.(t.head) in
  t.head <- (t.head + 1) land t.mask;
  t.len <- t.len - 1;
  if t.len = 0 then begin
    t.head <- 0;
    t.bits.(0) <- 0.0
  end
  else t.bits.(0) <- t.bits.(0) -. Packet_pool.size_bits t.pool h;
  h

let drop_head t = ignore (pop_exn t : int)

let[@inline] length t = t.len
let[@inline] bits t = t.bits.(0)
let[@inline] is_empty t = t.len = 0
let drops t = t.drops

(* Empties the ring WITHOUT freeing the handles — callers that want the
   cells recycled must drain with [pop_exn] and free each handle. *)
let clear t =
  t.head <- 0;
  t.len <- 0;
  t.bits.(0) <- 0.0
