(** Per-session FIFO packet queue with byte accounting and drop-tail limit.

    This is the physical queue at a leaf node (the paper's Q̂_i). It tracks
    [bits] = Q_i(t), the backlog in bits including the head packet, which is
    the quantity appearing in the T-WFI definition (paper eq. 10). *)

type t

val create : ?capacity_bits:float -> unit -> t
(** Unbounded unless [capacity_bits] is given (drop-tail beyond it). *)

val push : t -> Packet.t -> bool
(** Append. Returns [false] (and drops the packet) if it would exceed the
    capacity; the drop counter is incremented. *)

val pop : t -> Packet.t option
val peek : t -> Packet.t option

val peek_exn : t -> Packet.t
(** Allocation-free {!peek}. @raise Queue.Empty when the queue is empty. *)

val drop_head : t -> unit
(** Allocation-free head removal. @raise Queue.Empty when the queue is empty. *)

val length : t -> int
val bits : t -> float
(** Current backlog in bits. *)

val is_empty : t -> bool
val drops : t -> int
val clear : t -> unit
