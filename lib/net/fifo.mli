(** Per-session FIFO queue of pooled packet handles, with bit accounting
    and a drop-tail limit.

    This is the physical queue at a leaf node (the paper's Q̂_i). It tracks
    [bits] = Q_i(t), the backlog in bits including the head packet, which is
    the quantity appearing in the T-WFI definition (paper eq. 10).

    The queue is an intrusive int ring over a {!Packet_pool}: elements are
    immediate handles, so no cons cells, boxes or options are allocated on
    the push/pop path. The queue never frees handles — ownership stays with
    the engine that allocated them. *)

type t

val create : ?capacity_bits:float -> pool:Packet_pool.t -> unit -> t
(** Unbounded unless [capacity_bits] is given (drop-tail beyond it). Sizes
    for the accounting are read from [pool]. *)

val pool : t -> Packet_pool.t
(** The arena this queue's handles live in. *)

val push : t -> Packet_pool.handle -> bool
(** Append. Returns [false] (without enqueueing) if the packet's bits would
    exceed the capacity; the drop counter is incremented and the caller
    keeps ownership of the handle. *)

val peek_exn : t -> Packet_pool.handle
(** @raise Queue.Empty when the queue is empty. *)

val pop_exn : t -> Packet_pool.handle
(** Remove and return the head. @raise Queue.Empty when empty. *)

val drop_head : t -> unit
(** [pop_exn] with the result discarded (the handle is NOT freed).
    @raise Queue.Empty when the queue is empty. *)

val length : t -> int

val bits : t -> float
(** Current backlog in bits (snaps to 0.0 exactly when the queue empties,
    so float error cannot accumulate across busy periods). *)

val is_empty : t -> bool
val drops : t -> int

val clear : t -> unit
(** Empty the ring without freeing handles; the caller is responsible for
    recycling them (or leaking them deliberately, e.g. at teardown). *)
